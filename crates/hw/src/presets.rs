//! The evaluated cluster configurations (Table 3) plus ablation variants.

use crate::cluster::Cluster;
use crate::gpu::GpuModel;
use crate::link::{LinkClass, LinkSpec};
use crate::node::NodeLayout;

/// The paper's HGX H200 scale-up cluster: 4 nodes x 8 H200 (32 GPUs).
pub fn hgx_h200_cluster() -> Cluster {
    hgx_h200_with_nodes(4)
}

/// An HGX H200 cluster with an arbitrary node count (scaling studies).
pub fn hgx_h200_with_nodes(nodes: usize) -> Cluster {
    Cluster::new(
        format!("{}xH200", nodes * 8),
        GpuModel::H200.spec(),
        NodeLayout::hgx(),
        nodes,
    )
    .expect("preset cluster is statically valid")
}

/// The paper's HGX H100 scale-out cluster: 8 nodes x 8 H100 (64 GPUs).
pub fn hgx_h100_cluster() -> Cluster {
    hgx_h100_with_nodes(8)
}

/// An HGX H100 cluster with an arbitrary node count (scaling studies).
pub fn hgx_h100_with_nodes(nodes: usize) -> Cluster {
    Cluster::new(
        format!("{}xH100", nodes * 8),
        GpuModel::H100.spec(),
        NodeLayout::hgx(),
        nodes,
    )
    .expect("preset cluster is statically valid")
}

/// The paper's AMD cluster: 4 nodes x 4 MI250 packages = 32 logical GCDs.
pub fn mi250_cluster() -> Cluster {
    Cluster::new(
        "32xMI250-GCD",
        GpuModel::Mi250Gcd.spec(),
        NodeLayout::mi250(),
        4,
    )
    .expect("preset cluster is statically valid")
}

/// The balanced-interconnect ablation of Fig. 8: four nodes with a single
/// H200 each, removing PCIe/NIC sharing between GPUs.
pub fn single_gpu_per_node_cluster(nodes: usize) -> Cluster {
    Cluster::new(
        format!("{nodes}x1xH200"),
        GpuModel::H200.spec(),
        NodeLayout::single_gpu_hgx(),
        nodes,
    )
    .expect("preset cluster is statically valid")
}

/// An H200 cluster with the NIC line rate replaced (e.g. 800 Gbps for the
/// §7.1 bandwidth scaling projection).
pub fn hgx_h200_with_ib_gbps(nodes: usize, gbps: f64) -> Cluster {
    hgx_h200_with_nodes(nodes).with_nic(LinkSpec::ib_gbps(gbps))
}

/// An HGX H100 SuperPOD-style cluster: `nodes` HGX nodes under a two-tier
/// rail-optimized switch fabric with `rails` leaf switches (rails must
/// divide the 8 GPUs per node; 8 is the DGX SuperPOD layout, one rail per
/// HCA slot).
///
/// Each tier is a non-blocking aggregate: leaf bandwidth scales with the
/// attached node count and spine bandwidth with the full leaf uplink count,
/// so contention stays at the per-node NICs (the paper's bottleneck) and
/// switch hops contribute latency. Because tier capacity scales linearly
/// with node count, a symmetry-folded sub-cluster of `nodes/k` nodes
/// presents bit-identical per-flow rates — the property the folded engine's
/// golden tests pin.
pub fn hgx_h100_superpod(nodes: usize, rails: usize) -> Cluster {
    let base = Cluster::new(
        format!("{}xH100-superpod-{rails}rail", nodes * 8),
        GpuModel::H100.spec(),
        NodeLayout::hgx(),
        nodes,
    )
    .expect("preset cluster is statically valid");
    let nic_bw = base.node_layout().nic.bw_gbps;
    let leaf = LinkSpec::new(LinkClass::Switch, nic_bw * nodes as f64, 0.3, 0.2);
    let spine = LinkSpec::new(LinkClass::Switch, nic_bw * (nodes * rails) as f64, 0.5, 0.2);
    base.with_rail_fabric(rails, leaf, spine)
        .expect("preset rail fabric is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    #[test]
    fn table3_cluster_sizes() {
        assert_eq!(hgx_h200_cluster().num_gpus(), 32);
        assert_eq!(hgx_h200_cluster().num_nodes(), 4);
        assert_eq!(hgx_h100_cluster().num_gpus(), 64);
        assert_eq!(hgx_h100_cluster().num_nodes(), 8);
        assert_eq!(mi250_cluster().num_gpus(), 32);
        assert_eq!(mi250_cluster().num_nodes(), 4);
    }

    #[test]
    fn clusters_have_similar_total_memory() {
        // Paper: "two NVIDIA-based clusters with similar total memory".
        let h200 = hgx_h200_cluster();
        let h100 = hgx_h100_cluster();
        let m200 = h200.num_gpus() as u64 * h200.gpu().memory_bytes;
        let m100 = h100.num_gpus() as u64 * h100.gpu().memory_bytes;
        let ratio = m200 as f64 / m100 as f64;
        assert!((0.7..=1.3).contains(&ratio), "total memory ratio {ratio}");
    }

    #[test]
    fn h100_cluster_has_double_aggregate_compute() {
        let h200 = hgx_h200_cluster();
        let h100 = hgx_h100_cluster();
        let f200 = h200.num_gpus() as f64 * h200.gpu().peak_fp16_flops;
        let f100 = h100.num_gpus() as f64 * h100.gpu().peak_fp16_flops;
        assert!((f100 / f200 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_gpu_per_node_has_no_fabric_sharing() {
        let c = single_gpu_per_node_cluster(4);
        assert_eq!(c.num_gpus(), 4);
        assert_eq!(c.gpus_per_node(), 1);
    }

    #[test]
    fn ib_override_applies() {
        let c = hgx_h200_with_ib_gbps(4, 800.0);
        let nic = c
            .links()
            .find(|(_, s)| s.class == LinkClass::Nic)
            .map(|(_, s)| s.bw_gbps)
            .unwrap();
        assert_eq!(nic, 100.0);
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(hgx_h200_cluster().name(), "32xH200");
        assert_eq!(hgx_h100_cluster().name(), "64xH100");
    }

    #[test]
    fn superpod_routes_same_rail_through_one_leaf() {
        use crate::cluster::GpuId;
        let c = hgx_h100_superpod(4, 8);
        // Same slot on two nodes: same rail, leaf turnaround, no spine.
        let route = c.route(GpuId(0), GpuId(8)).unwrap();
        let classes: Vec<_> = route.iter().map(|id| c.link(*id).class).collect();
        assert_eq!(
            classes,
            vec![
                LinkClass::Pcie,
                LinkClass::Nic,
                LinkClass::Switch,
                LinkClass::Nic,
                LinkClass::Pcie,
            ]
        );
        // Different slots: cross-rail, leaf -> spine -> leaf.
        let route = c.route(GpuId(0), GpuId(9)).unwrap();
        let switches = route
            .iter()
            .filter(|id| c.link(**id).class == LinkClass::Switch)
            .count();
        assert_eq!(route.len(), 7);
        assert_eq!(switches, 3);
    }

    #[test]
    fn superpod_intra_node_routes_unchanged() {
        use crate::cluster::GpuId;
        let c = hgx_h100_superpod(4, 8);
        let flat = hgx_h100_with_nodes(4);
        assert_eq!(
            c.route(GpuId(0), GpuId(3)).unwrap().len(),
            flat.route(GpuId(0), GpuId(3)).unwrap().len(),
        );
    }

    #[test]
    fn superpod_tier_capacity_scales_with_nodes() {
        use crate::cluster::GpuId;
        let small = hgx_h100_superpod(4, 8);
        let large = hgx_h100_superpod(16, 8);
        let leaf_bw = |c: &Cluster| {
            let route = c.route(GpuId(0), GpuId(8)).unwrap();
            c.link(route[2]).bw_gbps
        };
        assert_eq!(leaf_bw(&large), 4.0 * leaf_bw(&small));
        // NIC remains the per-route bottleneck.
        let route = large.route(GpuId(0), GpuId(8)).unwrap();
        assert_eq!(large.route_bottleneck_gbps(&route), 12.5);
    }

    #[test]
    fn superpod_tier_shape_changes_fingerprint() {
        let flat = hgx_h100_with_nodes(4);
        let pod8 = hgx_h100_superpod(4, 8);
        let pod4 = hgx_h100_superpod(4, 4);
        assert_ne!(flat.fingerprint(), pod8.fingerprint());
        assert_ne!(pod8.fingerprint(), pod4.fingerprint());
        assert_eq!(pod8.fingerprint(), hgx_h100_superpod(4, 8).fingerprint());
    }

    #[test]
    fn rail_fabric_rejects_uneven_rails() {
        let c = hgx_h100_with_nodes(2);
        let sw = |bw: f64| LinkSpec::new(LinkClass::Switch, bw, 0.3, 0.2);
        assert!(c.clone().with_rail_fabric(3, sw(100.0), sw(800.0)).is_err());
        assert!(c.clone().with_rail_fabric(0, sw(100.0), sw(800.0)).is_err());
        // Non-switch tier specs are rejected.
        assert!(c
            .with_rail_fabric(8, LinkSpec::ib_100g(), sw(800.0))
            .is_err());
    }
}
