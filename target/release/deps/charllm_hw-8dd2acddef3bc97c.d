/root/repo/target/release/deps/charllm_hw-8dd2acddef3bc97c.d: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs

/root/repo/target/release/deps/libcharllm_hw-8dd2acddef3bc97c.rlib: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs

/root/repo/target/release/deps/libcharllm_hw-8dd2acddef3bc97c.rmeta: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs

crates/hw/src/lib.rs:
crates/hw/src/airflow.rs:
crates/hw/src/cluster.rs:
crates/hw/src/error.rs:
crates/hw/src/gpu.rs:
crates/hw/src/link.rs:
crates/hw/src/node.rs:
crates/hw/src/presets.rs:
