#!/usr/bin/env sh
# Local CI gate: build, test, format, lint — everything must pass clean.
# Usage: ./ci.sh
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> engine perf gate (512-GPU bench section vs committed baseline)"
out="$(CHARLLM_BENCH_SECTION=scale_512 cargo bench -p charllm-bench --bench sim_engine_hotpath)"
echo "$out" | grep "^scale_512 regression gate:"
echo "$out" | grep -q "^scale_512 regression gate: .*: OK" || {
    echo "FAIL: 512-GPU events/s regressed >15% below BENCH_sim_engine.json" >&2
    exit 1
}

echo "==> sweep cache smoke (microbatch_tuning example)"
out="$(cargo run --release --example microbatch_tuning)"
echo "$out" | grep "^sweep cache:"
echo "$out" | grep -Eq "^sweep cache: lowered [1-9][0-9]* hits .* plans [1-9][0-9]* hits" || {
    echo "FAIL: sweep cache reported zero hits" >&2
    exit 1
}

echo "==> fault engine smoke (faults_mtbf example)"
out="$(cargo run --release --example faults_mtbf)"
echo "$out" | grep -E "goodput [0-9]+(\.[0-9]+)? tokens/s" | head -3
echo "$out" | grep -Eq "goodput [0-9]+(\.[0-9]+)? tokens/s" || {
    echo "FAIL: faults_mtbf reported no finite goodput" >&2
    exit 1
}
echo "$out" | grep -Eq "cache after pass 2: lowered [1-9][0-9]* hits" || {
    echo "FAIL: repeated MTBF scenarios did not hit the cache" >&2
    exit 1
}

echo "==> 16k-GPU folded sweep smoke (scale_16k example)"
out="$(cargo run --release --example scale_16k)"
echo "$out" | grep "^wall budget:"
echo "$out" | grep -q "within 10 s budget: OK" || {
    echo "FAIL: 16k-GPU folded sweep blew the wall-clock budget" >&2
    exit 1
}
echo "$out" | grep -Eq "^sweep cache: plans [1-9][0-9]* hits" || {
    echo "FAIL: power-cap sweep did not share the folded plan set" >&2
    exit 1
}

echo "==> metrics hub smoke (live_dashboard example, non-TTY JSONL + Prometheus)"
out="$(cargo run --release --example live_dashboard)"
echo "$out" | grep '"event":"point"' | head -1
echo "$out" | grep -Eq '^\{"event":"point","seq":0,"index":[0-9]+,"total":32,' || {
    echo "FAIL: live_dashboard streamed no well-formed JSONL progress event" >&2
    exit 1
}
echo "$out" | grep '"event":"sweep_end"' >/dev/null || {
    echo "FAIL: live_dashboard stream never emitted the sweep_end event" >&2
    exit 1
}
echo "$out" | grep -E "^sweep_points_completed_total [1-9][0-9]*$" || {
    echo "FAIL: final Prometheus snapshot missing sweep_points_completed_total" >&2
    exit 1
}

echo "==> persistent cache + sim server smoke (serve example, ephemeral port)"
out="$(cargo run --release --example serve)"
echo "$out" | grep "^server B pass 2:"
echo "$out" | grep -Eq "^server B pass 2: disk_hits=[1-9][0-9]* lowered_misses=0 plan_misses=0" || {
    echo "FAIL: server restart was not served from the disk cache tier" >&2
    exit 1
}
echo "$out" | grep -q "^persistent cache: OK" || {
    echo "FAIL: serve example did not certify the persistent cache" >&2
    exit 1
}
echo "$out" | grep -Eq "^perfetto trace for point 0: [1-9][0-9]* events" || {
    echo "FAIL: server trace download returned no events" >&2
    exit 1
}

echo "==> cargo doc --workspace --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> CI green"
