/root/repo/target/debug/examples/quickstart-6e4f0f8c964cdfe2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6e4f0f8c964cdfe2: examples/quickstart.rs

examples/quickstart.rs:
