/root/repo/target/release/examples/config_search-ea201f3fb8ec5cca.d: examples/config_search.rs

/root/repo/target/release/examples/config_search-ea201f3fb8ec5cca: examples/config_search.rs

examples/config_search.rs:
