/root/repo/target/debug/deps/table2-dc860a895c1c61bc.d: crates/bench/benches/table2.rs

/root/repo/target/debug/deps/table2-dc860a895c1c61bc: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
