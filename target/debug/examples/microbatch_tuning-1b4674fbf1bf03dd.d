/root/repo/target/debug/examples/microbatch_tuning-1b4674fbf1bf03dd.d: examples/microbatch_tuning.rs

/root/repo/target/debug/examples/microbatch_tuning-1b4674fbf1bf03dd: examples/microbatch_tuning.rs

examples/microbatch_tuning.rs:
