/root/repo/target/release/deps/charllm_trace-7f7eb3ff58381b17.d: crates/trace/src/lib.rs crates/trace/src/builder.rs crates/trace/src/lower/mod.rs crates/trace/src/lower/grad_sync.rs crates/trace/src/lower/inference.rs crates/trace/src/lower/layer.rs crates/trace/src/task.rs crates/trace/src/trace.rs

/root/repo/target/release/deps/libcharllm_trace-7f7eb3ff58381b17.rlib: crates/trace/src/lib.rs crates/trace/src/builder.rs crates/trace/src/lower/mod.rs crates/trace/src/lower/grad_sync.rs crates/trace/src/lower/inference.rs crates/trace/src/lower/layer.rs crates/trace/src/task.rs crates/trace/src/trace.rs

/root/repo/target/release/deps/libcharllm_trace-7f7eb3ff58381b17.rmeta: crates/trace/src/lib.rs crates/trace/src/builder.rs crates/trace/src/lower/mod.rs crates/trace/src/lower/grad_sync.rs crates/trace/src/lower/inference.rs crates/trace/src/lower/layer.rs crates/trace/src/task.rs crates/trace/src/trace.rs

crates/trace/src/lib.rs:
crates/trace/src/builder.rs:
crates/trace/src/lower/mod.rs:
crates/trace/src/lower/grad_sync.rs:
crates/trace/src/lower/inference.rs:
crates/trace/src/lower/layer.rs:
crates/trace/src/task.rs:
crates/trace/src/trace.rs:
