//! Integration suite for the observability layer.
//!
//! Pins the contracts ISSUE 3 promises: span streams are identical between
//! the event-driven `Simulator` and the scan-based `ReferenceSimulator` on
//! the golden workloads; phase attribution tiles every rank's wall time and
//! conserves the measured energy exactly; the exported Chrome `traceEvents`
//! JSON is well-formed and loadable; and the default `NoopObserver` adds no
//! measurable overhead to the hot path.

use std::time::Instant;

use charllm_hw::{Cluster, GpuId, GpuModel, NodeLayout};
use charllm_models::{presets as models, TrainJob};
use charllm_net::{ChunkingPolicy, CollectiveKind};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::reference::ReferenceSimulator;
use charllm_sim::{NoopObserver, SimConfig, SimResult, Simulator};
use charllm_telemetry::{chrome_trace, phase, Phase, SpanRecorder};
use charllm_trace::builder::{CollKey, TraceBuilder};
use charllm_trace::lower::{lower_train, DeviceHints};
use charllm_trace::trace::TraceMeta;
use charllm_trace::{ComputeKind, ExecutionTrace};

fn one_node_cluster() -> Cluster {
    Cluster::new("8xH200", GpuModel::H200.spec(), NodeLayout::hgx(), 1).unwrap()
}

fn gpt3_trace(cluster: &Cluster, global_batch: usize) -> ExecutionTrace {
    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(global_batch);
    let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
    let partition = StagePartition::even(40, 2).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
        .unwrap()
        .trace
}

/// Hand-built 4-rank trace covering every collective kind (mirrors the
/// golden suite's coverage trace, including the eager SendRecv pair).
fn all_collectives_trace() -> ExecutionTrace {
    let mut b = TraceBuilder::new(4);
    let group = vec![0, 1, 2, 3];
    let mk = |b: &mut TraceBuilder, site, kind, bytes, eager: bool| {
        b.collective(
            CollKey {
                site,
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            kind,
            bytes,
            if eager { vec![0, 1] } else { group.clone() },
            ChunkingPolicy::nccl_default(),
            eager,
        )
    };
    for rank in 0..4 {
        b.compute(rank, ComputeKind::Attention, 1e11 * (rank + 1) as f64);
    }
    let a2a = mk(&mut b, "a2a", CollectiveKind::AllToAll, 1 << 22, false);
    let bc = mk(&mut b, "bcast", CollectiveKind::Broadcast, 1 << 21, false);
    let ag = mk(&mut b, "ag", CollectiveKind::AllGather, 1 << 20, false);
    let rs = mk(&mut b, "rs", CollectiveKind::ReduceScatter, 1 << 20, false);
    let p2p = mk(&mut b, "p2p", CollectiveKind::SendRecv, 1 << 19, true);
    b.start(0, p2p);
    for rank in 0..4 {
        b.blocking(rank, a2a);
        b.compute(rank, ComputeKind::Gemm, 5e10);
        b.blocking(rank, bc);
        b.blocking(rank, ag);
        b.blocking(rank, rs);
    }
    b.wait(1, p2p);
    b.build(TraceMeta {
        tokens_per_iteration: 128,
        ..Default::default()
    })
}

/// Run both engines with span recorders attached on the same inputs.
fn record_both(
    cluster: &Cluster,
    trace: &ExecutionTrace,
    cfg: SimConfig,
) -> ((SimResult, SpanRecorder), (SimResult, SpanRecorder)) {
    let placement = Placement::identity(cluster, trace.world()).unwrap();
    let new = Simulator::with_observer(cluster, &placement, trace, cfg, SpanRecorder::new())
        .unwrap()
        .run_observed()
        .unwrap();
    let reference =
        ReferenceSimulator::with_observer(cluster, &placement, trace, cfg, SpanRecorder::new())
            .unwrap()
            .run_observed()
            .unwrap();
    (new, reference)
}

fn assert_streams_equal(a: &SpanRecorder, b: &SpanRecorder, workload: &str) {
    assert_eq!(a.world(), b.world(), "{workload}: world");
    for rank in 0..a.world() {
        assert_eq!(
            a.spans(rank),
            b.spans(rank),
            "{workload}: span stream of rank {rank} diverged"
        );
    }
    assert_eq!(a.num_open_spans(), 0, "{workload}: unclosed spans");
    assert_eq!(b.num_open_spans(), 0, "{workload}: unclosed spans (ref)");
    assert_eq!(a.flows(), b.flows(), "{workload}: flow streams diverged");
    assert_eq!(a.open_flows(), b.open_flows(), "{workload}: open flows");
    assert_eq!(
        a.completions(),
        b.completions(),
        "{workload}: collective completions diverged"
    );
    assert_eq!(
        a.power_ticks(),
        b.power_ticks(),
        "{workload}: power ticks diverged"
    );
}

#[test]
fn span_streams_identical_between_engines_on_training_step() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 3;
    cfg.warmup_iterations = 1;
    let ((res_new, rec_new), (res_ref, rec_ref)) = record_both(&cluster, &trace, cfg);
    assert_eq!(
        serde_json::to_string(&res_new).unwrap(),
        serde_json::to_string(&res_ref).unwrap(),
        "results must stay byte-identical with recorders attached"
    );
    assert!(rec_new.num_spans() > 0, "training step must produce spans");
    assert_streams_equal(&rec_new, &rec_ref, "gpt3 training step");
}

#[test]
fn span_streams_identical_between_engines_on_every_collective_kind() {
    let cluster = one_node_cluster();
    let trace = all_collectives_trace();
    let mut cfg = SimConfig::fast();
    cfg.iterations = 2;
    let ((_, rec_new), (_, rec_ref)) = record_both(&cluster, &trace, cfg);
    assert!(
        rec_new.flows().iter().any(|f| f.t1_s > f.t0_s),
        "coverage trace must retire real flows"
    );
    assert_streams_equal(&rec_new, &rec_ref, "all-collectives trace");
}

#[test]
fn phase_attribution_tiles_every_ranks_wall_time() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 3;
    cfg.warmup_iterations = 1;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let result = Simulator::profiled(&cluster, &placement, &trace, cfg)
        .unwrap()
        .run_profiled()
        .unwrap();
    let profile = result.profile.as_ref().expect("profiled run");
    assert_eq!(profile.world(), trace.world());
    assert!(profile.makespan_s > 0.0);
    for (rank, phases) in profile.rank_phases.iter().enumerate() {
        let total = phases.total_seconds();
        let rel = (total - profile.makespan_s).abs() / profile.makespan_s;
        assert!(
            rel < 1e-9,
            "rank {rank}: phase seconds {total} do not tile makespan {} (rel {rel:e})",
            profile.makespan_s
        );
    }
    // Per-iteration buckets never exceed their rank's totals.
    for (rank, phases) in profile.rank_phases.iter().enumerate() {
        for phase in Phase::all() {
            let iter_sum: f64 = profile
                .iteration_phases
                .iter()
                .map(|ranks| ranks[rank].seconds(phase))
                .sum();
            assert!(
                iter_sum <= phases.seconds(phase) + 1e-9,
                "rank {rank} {phase}: iteration buckets exceed rank total"
            );
        }
    }
}

#[test]
fn phase_attribution_conserves_measured_energy() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 3;
    cfg.warmup_iterations = 1;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let (result, recorder) =
        Simulator::with_observer(&cluster, &placement, &trace, cfg, SpanRecorder::new())
            .unwrap()
            .run_observed()
            .unwrap();
    let profile = phase::attribute(&recorder, result.sim_time_s, cfg.iterations);

    // Each rank's phase energy must sum to its GPU's measured energy,
    // recomputed independently from the power ticks.
    for rank in 0..profile.world() {
        let gpu = recorder.gpu_of_rank(rank).expect("rank placed on a gpu");
        let measured: f64 = recorder
            .power_ticks()
            .iter()
            .filter(|t| t.gpu == gpu && t.measuring)
            .map(|t| t.power_w * t.period_s)
            .sum();
        let attributed = profile.rank_phases[rank].total_energy_j();
        let rel = (attributed - measured).abs() / measured.max(1e-12);
        assert!(
            rel < 1e-9,
            "rank {rank}: attributed {attributed} J vs measured {measured} J (rel {rel:e})"
        );
    }

    // Cluster total matches the engine's own energy accounting.
    let expected = result.energy_per_step_j * cfg.measured_iterations() as f64;
    let total = profile.cluster_total().total_energy_j();
    let rel = (total - expected).abs() / expected;
    assert!(
        rel < 1e-9,
        "cluster phase energy {total} J vs engine accounting {expected} J (rel {rel:e})"
    );
}

#[test]
fn exported_trace_events_json_is_wellformed() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 8);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 2;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let (result, recorder) =
        Simulator::with_observer(&cluster, &placement, &trace, cfg, SpanRecorder::new())
            .unwrap()
            .run_observed()
            .unwrap();
    let node_of_gpu: Vec<usize> = (0..cluster.num_gpus())
        .map(|g| cluster.node_of(GpuId(g as u32)).index())
        .collect();
    let exported = chrome_trace::export(&recorder, &node_of_gpu);

    // Roundtrip through the serialized form, as a Perfetto load would.
    let text = serde_json::to_string(&exported).unwrap();
    let value: serde_json::Value = serde_json::from_str(&text).unwrap();
    let events = value
        .as_object()
        .expect("top-level object")
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let makespan_us = result.sim_time_s * 1e6;
    let mut process_names = std::collections::BTreeSet::new();
    let mut thread_names = std::collections::BTreeSet::new();
    let mut starts = 0usize;
    let mut finishes = 0usize;
    for event in events {
        let obj = event.as_object().expect("event object");
        let ph = obj.get("ph").and_then(|v| v.as_str()).expect("ph string");
        match ph {
            "M" => {
                let name = obj.get("name").and_then(|v| v.as_str()).unwrap();
                let pid = obj.get("pid").and_then(|v| v.as_f64()).unwrap() as i64;
                let tid = obj.get("tid").and_then(|v| v.as_f64()).unwrap() as i64;
                if name == "process_name" {
                    assert!(process_names.insert(pid), "duplicate process {pid}");
                } else if name == "thread_name" {
                    assert!(thread_names.insert((pid, tid)), "duplicate thread {tid}");
                }
            }
            "X" => {
                let ts = obj.get("ts").and_then(|v| v.as_f64()).unwrap();
                let dur = obj.get("dur").and_then(|v| v.as_f64()).unwrap();
                assert!(ts >= 0.0, "negative timestamp {ts}");
                assert!(dur >= 0.0, "negative duration {dur}");
                assert!(
                    ts + dur <= makespan_us + 1e-3,
                    "span [{ts}, {}] exceeds makespan {makespan_us} us",
                    ts + dur
                );
            }
            "s" => starts += 1,
            "f" => finishes += 1,
            "C" => {
                let watts = obj
                    .get("args")
                    .and_then(|a| a.as_object())
                    .and_then(|a| a.get("watts"))
                    .and_then(|v| v.as_f64())
                    .unwrap();
                assert!(watts >= 0.0, "negative power sample");
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // One process per node, one thread per rank.
    assert_eq!(process_names.len(), cluster.num_nodes());
    assert_eq!(thread_names.len(), trace.world());
    // Every launched flow has exactly one source and one finish arrow.
    assert_eq!(starts, recorder.flows().len());
    assert_eq!(finishes, recorder.flows().len());
}

#[test]
fn noop_observer_adds_no_measurable_overhead() {
    // `Simulator::new` *is* `Simulator::with_observer(.., NoopObserver)`,
    // so the two paths monomorphize to the same machine code and the hook
    // sites are compiled out. This guard pins that property with *paired*
    // wall-clock runs: each pair runs back-to-back under the same ambient
    // load, and the best pair must land inside the 2% budget. A genuinely
    // compiled-in hook cost would slow the noop side of every pair.
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 3;
    cfg.warmup_iterations = 1;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let time_plain = || {
        let t0 = Instant::now();
        let r = Simulator::new(&cluster, &placement, &trace, cfg)
            .unwrap()
            .run()
            .unwrap();
        (t0.elapsed().as_secs_f64(), r.sim_time_s)
    };
    let time_noop = || {
        let t0 = Instant::now();
        let r = Simulator::with_observer(&cluster, &placement, &trace, cfg, NoopObserver)
            .unwrap()
            .run()
            .unwrap();
        (t0.elapsed().as_secs_f64(), r.sim_time_s)
    };
    let mut best_ratio = f64::INFINITY;
    for _ in 0..5 {
        let (tp, sp) = time_plain();
        let (tn, sn) = time_noop();
        assert_eq!(sp, sn, "observer changed simulated time");
        best_ratio = best_ratio.min(tn / tp);
    }
    let overhead = best_ratio - 1.0;
    assert!(
        overhead < 0.02,
        "NoopObserver overhead {:.2}% exceeds the 2% budget in every paired run",
        overhead * 100.0
    );
}
