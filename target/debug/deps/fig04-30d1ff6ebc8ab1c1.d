/root/repo/target/debug/deps/fig04-30d1ff6ebc8ab1c1.d: crates/bench/benches/fig04.rs

/root/repo/target/debug/deps/fig04-30d1ff6ebc8ab1c1: crates/bench/benches/fig04.rs

crates/bench/benches/fig04.rs:
