//! Figure 5: per-GPU total NVLink and PCIe traffic distribution on the HGX
//! H200 cluster during training.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, feasible, save_json, try_run};
use charllm_telemetry::Heatmap;

fn main() {
    banner(
        "Figure 5",
        "per-GPU NVLink + PCIe traffic heatmaps, 32xH200",
    );
    let cluster = hgx_h200_cluster();
    let cols: Vec<String> = (0..cluster.num_gpus()).map(|g| format!("g{g}")).collect();
    let mut json = serde_json::Map::new();
    for arch in [gpt3_175b(), mixtral_8x22b()] {
        let job = bench_job(arch.clone()).with_recompute(true);
        let mut nv_rows = Vec::new();
        let mut pcie_rows = Vec::new();
        let mut labels = Vec::new();
        for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
            if !feasible(&job, &spec, &cluster) {
                continue;
            }
            if let Some(r) = try_run(&cluster, &job, spec) {
                nv_rows.push(
                    (0..cluster.num_gpus())
                        .map(|g| r.sim.traffic.fabric(g) / 1e9)
                        .collect::<Vec<_>>(),
                );
                pcie_rows.push(
                    (0..cluster.num_gpus())
                        .map(|g| r.sim.traffic.pcie(g) / 1e9)
                        .collect::<Vec<_>>(),
                );
                labels.push(r.parallelism.clone());
            }
        }
        let nv = Heatmap::new(labels.clone(), cols.clone(), nv_rows);
        let pcie = Heatmap::new(labels, cols.clone(), pcie_rows);
        println!(
            "\n--- {} NVLink traffic (GB per step per GPU) ---",
            arch.name
        );
        print!("{}", nv.to_ascii());
        println!("--- {} PCIe traffic (GB per step per GPU) ---", arch.name);
        print!("{}", pcie.to_ascii());
        json.insert(format!("{}_nvlink_csv", arch.name), nv.to_csv().into());
        json.insert(format!("{}_pcie_csv", arch.name), pcie.to_csv().into());
    }
    save_json("fig05", &serde_json::Value::Object(json));
    println!(
        "\nExpected shape: TP-heavy configs show uniformly heavy fabric traffic\n\
         (>70 GB/GPU for Mixtral in the paper) and, when EP spans nodes, heavy\n\
         PCIe traffic; PP-heavy configs concentrate PCIe traffic on the\n\
         stage-boundary GPUs."
    );
}
