/root/repo/target/debug/deps/fig08-295f0ddf449ce001.d: crates/bench/benches/fig08.rs

/root/repo/target/debug/deps/fig08-295f0ddf449ce001: crates/bench/benches/fig08.rs

crates/bench/benches/fig08.rs:
