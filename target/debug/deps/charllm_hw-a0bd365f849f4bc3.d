/root/repo/target/debug/deps/charllm_hw-a0bd365f849f4bc3.d: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_hw-a0bd365f849f4bc3.rmeta: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/airflow.rs:
crates/hw/src/cluster.rs:
crates/hw/src/error.rs:
crates/hw/src/gpu.rs:
crates/hw/src/link.rs:
crates/hw/src/node.rs:
crates/hw/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
