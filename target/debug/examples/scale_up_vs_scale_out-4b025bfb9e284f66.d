/root/repo/target/debug/examples/scale_up_vs_scale_out-4b025bfb9e284f66.d: examples/scale_up_vs_scale_out.rs

/root/repo/target/debug/examples/scale_up_vs_scale_out-4b025bfb9e284f66: examples/scale_up_vs_scale_out.rs

examples/scale_up_vs_scale_out.rs:
