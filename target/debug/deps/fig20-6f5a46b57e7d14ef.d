/root/repo/target/debug/deps/fig20-6f5a46b57e7d14ef.d: crates/bench/benches/fig20.rs

/root/repo/target/debug/deps/fig20-6f5a46b57e7d14ef: crates/bench/benches/fig20.rs

crates/bench/benches/fig20.rs:
