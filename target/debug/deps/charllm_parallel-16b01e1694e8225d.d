/root/repo/target/debug/deps/charllm_parallel-16b01e1694e8225d.d: crates/parallel/src/lib.rs crates/parallel/src/enumerate.rs crates/parallel/src/error.rs crates/parallel/src/mapping.rs crates/parallel/src/memory.rs crates/parallel/src/placement.rs crates/parallel/src/schedule.rs crates/parallel/src/spec.rs crates/parallel/src/thermal_aware.rs

/root/repo/target/debug/deps/libcharllm_parallel-16b01e1694e8225d.rlib: crates/parallel/src/lib.rs crates/parallel/src/enumerate.rs crates/parallel/src/error.rs crates/parallel/src/mapping.rs crates/parallel/src/memory.rs crates/parallel/src/placement.rs crates/parallel/src/schedule.rs crates/parallel/src/spec.rs crates/parallel/src/thermal_aware.rs

/root/repo/target/debug/deps/libcharllm_parallel-16b01e1694e8225d.rmeta: crates/parallel/src/lib.rs crates/parallel/src/enumerate.rs crates/parallel/src/error.rs crates/parallel/src/mapping.rs crates/parallel/src/memory.rs crates/parallel/src/placement.rs crates/parallel/src/schedule.rs crates/parallel/src/spec.rs crates/parallel/src/thermal_aware.rs

crates/parallel/src/lib.rs:
crates/parallel/src/enumerate.rs:
crates/parallel/src/error.rs:
crates/parallel/src/mapping.rs:
crates/parallel/src/memory.rs:
crates/parallel/src/placement.rs:
crates/parallel/src/schedule.rs:
crates/parallel/src/spec.rs:
crates/parallel/src/thermal_aware.rs:
