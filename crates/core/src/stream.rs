//! Structured JSONL progress streaming for sweeps.
//!
//! [`Sweep::stream`](crate::sweep::Sweep::stream) upgrades the free-form
//! [`on_progress`](crate::sweep::Sweep::on_progress) callback into a
//! machine-readable channel: one [`ProgressEvent`] per sweep point,
//! serialized as a single JSON line, emitted in **enumeration order** (the
//! sweep buffers out-of-order completions from parallel workers), followed
//! by one `sweep_end` event carrying the final
//! [`MetricsSnapshot`](charllm_telemetry::MetricsSnapshot). The line
//! protocol is what the future job server (ROADMAP item 5) will speak: a
//! consumer needs nothing but a line-buffered reader and a JSON parser —
//! see `examples/live_dashboard.rs` for a terminal renderer built on it.
//!
//! When the sweep also carries a
//! [`MetricsHub`](charllm_telemetry::MetricsHub), each
//! point event embeds the hub's snapshot *delta* since the previous event;
//! deltas are exact (integer counters, fixed-point histogram sums), so
//! summing every delta reproduces the final snapshot bit-for-bit.

use std::fmt;
use std::io::Write;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// One line of the sweep progress stream.
///
/// Every field is always present (the vendored serde derives have no
/// `skip_serializing_if`), with sentinel values where a field does not
/// apply: empty strings, `0.0` metrics for non-completed points, a
/// negative `eta_s` when no estimate exists yet, and JSON `null` for
/// `metrics` when no hub is attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressEvent {
    /// `"point"` (one sweep point finished) or `"sweep_end"` (terminal
    /// event; `metrics` holds the full final snapshot).
    pub event: String,
    /// Emission sequence number, 0-based, dense: `seq` of `sweep_end`
    /// equals the number of points.
    pub seq: u64,
    /// The point's enumeration index (== `total` on `sweep_end`). Events
    /// are emitted in ascending `index` order regardless of worker
    /// scheduling.
    pub index: usize,
    /// Total points in the sweep.
    pub total: usize,
    /// Points finished so far with a report, at emission time.
    pub completed: usize,
    /// Points skipped so far (infeasible geometry in skip mode).
    pub skipped: usize,
    /// Points failed so far (strict mode).
    pub failed: usize,
    /// `"completed"`, `"skipped"` or `"failed"`; empty on `sweep_end`.
    pub outcome: String,
    /// Display label of the point (`"TP2-PP2 Base mb1"`); empty on
    /// `sweep_end`.
    pub point: String,
    /// Skip/fail reason; empty for completed points and `sweep_end`.
    pub reason: String,
    /// Mean step time of the point's report (0.0 unless completed).
    pub step_time_s: f64,
    /// Throughput of the point's report (0.0 unless completed).
    pub tokens_per_s: f64,
    /// Energy per step of the point's report (0.0 unless completed).
    pub energy_per_step_j: f64,
    /// Wall seconds since the sweep started.
    pub elapsed_s: f64,
    /// Estimated wall seconds to finish (linear extrapolation over
    /// finished points); `-1.0` before the first point, `0.0` on
    /// `sweep_end`.
    pub eta_s: f64,
    /// Metrics-hub snapshot delta since the previous event (full snapshot
    /// on `sweep_end`), in [`MetricsSnapshot::to_json`] shape; `null`
    /// when the sweep has no hub attached.
    ///
    /// [`MetricsSnapshot::to_json`]: charllm_telemetry::MetricsSnapshot::to_json
    pub metrics: Value,
}

impl ProgressEvent {
    /// Serialize to one JSON line (no trailing newline).
    ///
    /// # Panics
    ///
    /// Never panics: every field is serializable.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("progress event serializes")
    }

    /// Parse one line of the stream.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed lines.
    pub fn from_json_line(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }
}

/// A line-oriented sink for [`ProgressEvent`]s: each event is written as
/// one JSON line and flushed, so a consumer tailing the stream sees points
/// as they finish. Writes from parallel sweep workers are serialized by an
/// internal mutex (and further ordered by the sweep's emission buffer, so
/// lines arrive in point order).
pub struct ProgressStream {
    out: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for ProgressStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgressStream").finish_non_exhaustive()
    }
}

impl ProgressStream {
    /// Stream into any writer (a file, a pipe, a `Vec<u8>` in tests).
    pub fn new(out: impl Write + Send + 'static) -> Self {
        ProgressStream {
            out: Mutex::new(Box::new(out)),
        }
    }

    /// Stream to standard output.
    pub fn stdout() -> Self {
        ProgressStream::new(std::io::stdout())
    }

    /// Write one event as a JSON line and flush. I/O errors are ignored:
    /// a torn-down consumer (closed pipe) must not abort the sweep.
    pub fn emit(&self, event: &ProgressEvent) {
        let mut out = self.out.lock().expect("stream writer poisoned");
        let _ = writeln!(out, "{}", event.to_json_line());
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn event(seq: u64) -> ProgressEvent {
        ProgressEvent {
            event: "point".into(),
            seq,
            index: seq as usize,
            total: 4,
            completed: seq as usize + 1,
            skipped: 0,
            failed: 0,
            outcome: "completed".into(),
            point: "TP2-PP2 Base mb1".into(),
            reason: String::new(),
            step_time_s: 0.5,
            tokens_per_s: 1000.0,
            energy_per_step_j: 42.0,
            elapsed_s: 1.0,
            eta_s: 3.0,
            metrics: Value::Null,
        }
    }

    #[test]
    fn events_roundtrip_through_json_lines() {
        let e = event(2);
        let line = e.to_json_line();
        assert!(!line.contains('\n'), "one event, one line");
        let back = ProgressEvent::from_json_line(&line).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn stream_writes_one_line_per_event_and_flushes() {
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = Shared::default();
        let stream = ProgressStream::new(sink.clone());
        stream.emit(&event(0));
        stream.emit(&event(1));
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(ProgressEvent::from_json_line(lines[1]).unwrap().seq, 1);
    }
}
