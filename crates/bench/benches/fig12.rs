//! Figure 12: GPU temperature, power and frequency during LoRA fine-tuning
//! on the H200 cluster — LoRA slashes synchronization and optimizer work,
//! lifting efficiency an order of magnitude over full pretraining.

use charllm::prelude::*;
use charllm_bench::{banner, feasible, gbs, report_json, save_json, sim_config};

fn main() {
    banner(
        "Figure 12",
        "LoRA fine-tuning: power/temp/frequency/efficiency, H200",
    );
    let cluster = hgx_h200_cluster();
    let arch = llama3_70b();
    let mut rows = Vec::new();
    println!(
        "{:<14} {:<6} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "config", "mode", "tokens/s", "tokens/J", "avg W", "peak C", "MHz"
    );
    let mut ratio: Option<(f64, f64)> = None;
    for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
        let full = TrainJob::pretrain(arch.clone())
            .with_global_batch(gbs())
            .with_recompute(true);
        let lora = TrainJob::lora_finetune(arch.clone()).with_global_batch(gbs());
        for (mode, job) in [("full", full), ("lora", lora)] {
            if !feasible(&job, &spec, &cluster) {
                continue;
            }
            let Ok(r) = Experiment::builder()
                .cluster(cluster.clone())
                .job(job)
                .spec(spec)
                .sim_config(sim_config())
                .run()
            else {
                continue;
            };
            println!(
                "{:<14} {:<6} {:>12.0} {:>10.2} {:>8.0} {:>8.1} {:>8.0}",
                r.parallelism,
                mode,
                r.tokens_per_s,
                r.tokens_per_joule,
                r.mean_power_w,
                r.peak_temp_c,
                r.mean_freq_mhz
            );
            if spec.label() == "TP4-PP4" {
                match mode {
                    "full" => ratio = Some((r.tokens_per_joule, 0.0)),
                    _ => {
                        if let Some((f, _)) = ratio {
                            ratio = Some((f, r.tokens_per_joule));
                        }
                    }
                }
            }
            rows.push(report_json(&r));
        }
    }
    if let Some((full, lora)) = ratio {
        if full > 0.0 && lora > 0.0 {
            println!("\nTP4-PP4 efficiency gain from LoRA: {:.1}x", lora / full);
        }
    }
    save_json("fig12", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: LoRA trains far more tokens per joule (the paper\n\
         reports >10x), draws less power and runs cooler, with the same\n\
         relative ordering across parallelism strategies as pretraining."
    );
}
