//! Figure 10: GPU power, temperature and clock frequency on the MI250
//! cluster across the scaled 30B models, parallelism and optimizations.

use charllm::prelude::*;
use charllm::sweep::normalized;
use charllm_bench::{banner, bench_job, feasible, report_json, save_json, try_run};

fn main() {
    banner(
        "Figure 10",
        "MI250 (chiplet GCDs): optimizations vs power/temp/frequency",
    );
    let cluster = mi250_cluster();
    let mut rows = Vec::new();
    for arch in amd_models() {
        println!("\n--- {} ---", arch.name);
        println!(
            "{:<14} {:<7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7}",
            "config", "opt", "eff", "avg W", "peak W", "peak C", "MHz", "thr %"
        );
        let base = bench_job(arch.clone());
        let mut reports = Vec::new();
        for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
            for job in optimization_variants(&base) {
                if !feasible(&job, &spec, &cluster) {
                    continue;
                }
                if let Some(r) = try_run(&cluster, &job, spec) {
                    reports.push(r);
                }
            }
        }
        for (r, eff) in normalized(&reports, |r| r.tokens_per_joule) {
            println!(
                "{:<14} {:<7} {:>7.2} {:>8.0} {:>8.0} {:>8.1} {:>8.0} {:>6.1}%",
                r.parallelism,
                r.optimization,
                eff,
                r.mean_power_w,
                r.peak_power_w,
                r.peak_temp_c,
                r.mean_freq_mhz,
                r.mean_throttle * 100.0,
            );
            rows.push(report_json(r));
        }
    }
    save_json("fig10", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: per-GCD power stays within the 250 W half-package\n\
         budget; the chiplet cluster throttles less than H200 (memory limits\n\
         bind before thermal ones, §5), and recomputation costs efficiency."
    );
}
