/root/repo/target/debug/deps/fig02-438a8f2238441073.d: crates/bench/benches/fig02.rs

/root/repo/target/debug/deps/fig02-438a8f2238441073: crates/bench/benches/fig02.rs

crates/bench/benches/fig02.rs:
