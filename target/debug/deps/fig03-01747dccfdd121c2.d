/root/repo/target/debug/deps/fig03-01747dccfdd121c2.d: crates/bench/benches/fig03.rs

/root/repo/target/debug/deps/fig03-01747dccfdd121c2: crates/bench/benches/fig03.rs

crates/bench/benches/fig03.rs:
