/root/repo/target/debug/deps/fig19-872220d94fab5918.d: crates/bench/benches/fig19.rs

/root/repo/target/debug/deps/fig19-872220d94fab5918: crates/bench/benches/fig19.rs

crates/bench/benches/fig19.rs:
