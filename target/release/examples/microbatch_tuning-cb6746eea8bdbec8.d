/root/repo/target/release/examples/microbatch_tuning-cb6746eea8bdbec8.d: examples/microbatch_tuning.rs

/root/repo/target/release/examples/microbatch_tuning-cb6746eea8bdbec8: examples/microbatch_tuning.rs

examples/microbatch_tuning.rs:
