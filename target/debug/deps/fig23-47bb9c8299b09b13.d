/root/repo/target/debug/deps/fig23-47bb9c8299b09b13.d: crates/bench/benches/fig23.rs

/root/repo/target/debug/deps/fig23-47bb9c8299b09b13: crates/bench/benches/fig23.rs

crates/bench/benches/fig23.rs:
