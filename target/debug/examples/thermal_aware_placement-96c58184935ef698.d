/root/repo/target/debug/examples/thermal_aware_placement-96c58184935ef698.d: examples/thermal_aware_placement.rs

/root/repo/target/debug/examples/thermal_aware_placement-96c58184935ef698: examples/thermal_aware_placement.rs

examples/thermal_aware_placement.rs:
