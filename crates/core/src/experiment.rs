//! Experiment definition and execution.

use std::sync::Arc;

use charllm_hw::Cluster;
use charllm_models::TrainJob;
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::{FaultPlan, SimConfig, SimResult, Simulator};
use charllm_telemetry::aggregate::group_mean;
use charllm_telemetry::metrics::MetricsShard;
use charllm_telemetry::StageTimer;
use charllm_trace::{lower_inference, lower_train, DeviceHints, InferenceConfig};

use crate::cache::{CacheHit, CacheStats, SimCache};
use crate::error::CoreError;
use crate::report::RunReport;

/// One fully specified run: cluster × job × parallelism × schedule ×
/// placement × simulator configuration.
///
/// The cluster is held behind an [`Arc`] so sweep/search executors can fan
/// hundreds of points across worker threads without deep-cloning the
/// topology per point.
#[derive(Debug, Clone)]
pub struct Experiment {
    cluster: Arc<Cluster>,
    job: TrainJob,
    spec: ParallelismSpec,
    schedule: PipelineSchedule,
    partition: Option<StagePartition>,
    placement: Option<Placement>,
    sim: SimConfig,
    inference: Option<InferenceConfig>,
    profiled: bool,
    cache: Option<Arc<SimCache>>,
    faults: Option<FaultPlan>,
    metrics: Option<MetricsShard>,
    self_profile: bool,
}

impl Experiment {
    /// Start building an experiment.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// Execute: lower the workload, simulate, and assemble a report.
    ///
    /// # Errors
    ///
    /// Propagates configuration, lowering and simulation errors.
    pub fn run(&self) -> Result<RunReport, CoreError> {
        let shard = self.metrics.as_ref().filter(|s| s.enabled());
        // Host-side self-profiling: four `Instant::now` calls per run, so
        // the timer runs whenever anything will read it (`self_profile`
        // puts the timings on the report; an attached shard feeds the
        // `sim_stage_seconds` histogram).
        let mut timer = (self.self_profile || shard.is_some()).then(StageTimer::start);
        let partition = match &self.partition {
            Some(p) => p.clone(),
            None => StagePartition::even(self.job.arch.num_layers, self.spec.pp)?,
        };
        let placement = match &self.placement {
            Some(p) => p.clone(),
            None => Placement::identity(&self.cluster, self.spec.world())?,
        };
        let hints = DeviceHints::for_spec(self.cluster.gpu());
        let lower = || match &self.inference {
            None => lower_train(&self.job, &self.spec, self.schedule, &partition, &hints)
                .map_err(CoreError::from),
            Some(cfg) => lower_inference(&self.job, &self.spec, &partition, &hints, *cfg)
                .map_err(CoreError::from),
        };
        // With a cache attached, lowering and collective-plan construction
        // are served by content key; results are byte-identical either way
        // (the trace is the same artifact, and shared plans are pure
        // functions of cluster × placement × trace).
        let (lowered, shared, mut cache_stats) = match &self.cache {
            None => (Arc::new(lower()?), None, None),
            Some(cache) => {
                let mut key = SimCache::lowered_key(
                    &self.job,
                    &self.spec,
                    self.schedule,
                    &partition,
                    &hints,
                    self.inference.as_ref(),
                );
                // The fault plan participates in the cache key. This is
                // conservative — faults perturb neither the lowered trace
                // nor the collective plans — but it keeps the key an exact
                // content hash of everything that shapes the run, and
                // repeated points of an MTBF sweep (same plan) still hit.
                if let Some(plan) = &self.faults {
                    key.push('|');
                    key.push_str(&serde_json::to_string(plan).expect("fault plan serializes"));
                }
                let (lowered, lowered_hit) = cache.lowered(&key, lower)?;
                let (shared, plan_hit) =
                    cache.plans(&self.cluster, &placement, &key, &lowered.trace, 1);
                let disk = cache.has_disk_tier();
                let stats = CacheStats {
                    lowered_hits: u64::from(lowered_hit.is_hit()),
                    lowered_misses: u64::from(!lowered_hit.is_hit()),
                    plan_hits: u64::from(plan_hit.is_hit()),
                    plan_misses: u64::from(!plan_hit.is_hit()),
                    lowered_disk_hits: u64::from(lowered_hit == CacheHit::Disk),
                    lowered_disk_misses: u64::from(disk && lowered_hit == CacheHit::Miss),
                    plan_disk_hits: u64::from(plan_hit == CacheHit::Disk),
                    plan_disk_misses: u64::from(disk && plan_hit == CacheHit::Miss),
                    ..CacheStats::default()
                };
                (lowered, Some(shared), Some(stats))
            }
        };
        if let Some(t) = &mut timer {
            t.mark("lower");
        }
        let sim = if self.profiled {
            let mut sim = Simulator::profiled(&self.cluster, &placement, &lowered.trace, self.sim)?;
            if let Some(shared) = &shared {
                sim = sim
                    .with_shared_plans(Arc::clone(shared))
                    .map_err(CoreError::from)?;
            }
            if let Some(plan) = &self.faults {
                sim = sim.with_faults(plan).map_err(CoreError::from)?;
            }
            if let Some(s) = shard {
                sim = sim.with_metrics(s);
            }
            if let Some(t) = &mut timer {
                t.mark("plan_setup");
            }
            sim.run_profiled()?
        } else {
            let mut sim = Simulator::new(&self.cluster, &placement, &lowered.trace, self.sim)?;
            if let Some(shared) = &shared {
                sim = sim
                    .with_shared_plans(Arc::clone(shared))
                    .map_err(CoreError::from)?;
            }
            if let Some(plan) = &self.faults {
                sim = sim.with_faults(plan).map_err(CoreError::from)?;
            }
            if let Some(s) = shard {
                sim = sim.with_metrics(s);
            }
            if let Some(t) = &mut timer {
                t.mark("plan_setup");
            }
            sim.run()?
        };
        if let Some(t) = &mut timer {
            t.mark("event_loop");
        }
        // Persist what this run added to the cache only now: the shared
        // plan set filled lazily *during* the simulation, so syncing any
        // earlier would write an empty set.
        if let Some(cache) = &self.cache {
            let written = cache.sync_disk()?;
            if let Some(stats) = &mut cache_stats {
                stats.bytes_written = written;
            }
        }
        let mut report = self.report(sim, &placement);
        report.cache = cache_stats;
        if let Some(mut t) = timer {
            t.mark("report");
            let timings = t.finish();
            if let Some(s) = shard {
                for st in &timings.stages {
                    s.histogram(
                        "sim_stage_seconds",
                        &[("stage", &st.stage)],
                        charllm_sim::fold::STAGE_SECONDS_BOUNDS,
                    )
                    .observe(st.seconds);
                }
            }
            if self.self_profile {
                report.stages = Some(timings);
            }
        }
        Ok(report)
    }

    fn report(&self, sim: SimResult, placement: &Placement) -> RunReport {
        let airflow = &self.cluster.node_layout().airflow;
        let telem = &sim.telemetry;
        let used: Vec<usize> = placement.iter().map(|(_, g)| g.index()).collect();
        let front: Vec<usize> = used
            .iter()
            .copied()
            .filter(|&g| !airflow.is_rear(self.cluster.slot_of(charllm_hw::GpuId(g as u32))))
            .collect();
        let rear: Vec<usize> = used
            .iter()
            .copied()
            .filter(|&g| airflow.is_rear(self.cluster.slot_of(charllm_hw::GpuId(g as u32))))
            .collect();
        let front_temp = group_mean(front.iter().map(|&g| telem.temp(g)));
        let rear_temp = group_mean(rear.iter().map(|&g| telem.temp(g)));
        let throttles: Vec<f64> = used.iter().map(|&g| sim.throttle_ratio[g]).collect();
        let mean_throttle = if throttles.is_empty() {
            0.0
        } else {
            throttles.iter().sum::<f64>() / throttles.len() as f64
        };
        let max_throttle = throttles.iter().copied().fold(0.0, f64::max);
        let optimization = self.job.optim.label();
        RunReport {
            label: format!(
                "{} {} {} mb{} on {}",
                self.job.arch.name,
                self.spec.label(),
                optimization,
                self.job.microbatch,
                self.cluster.name()
            ),
            cluster: self.cluster.name().to_string(),
            model: self.job.arch.name.clone(),
            parallelism: self.spec.label(),
            optimization,
            microbatch: self.job.microbatch,
            step_time_s: sim.step_time_s,
            tokens_per_s: sim.tokens_per_s,
            tokens_per_s_per_gpu: sim.tokens_per_s / self.spec.world() as f64,
            tokens_per_joule: sim.tokens_per_joule,
            energy_per_step_j: sim.energy_per_step_j,
            mean_power_w: telem.mean_power_w(),
            peak_power_w: telem.peak_power_w(),
            mean_temp_c: telem.mean_temp_c(),
            peak_temp_c: telem.peak_temp_c(),
            mean_freq_mhz: telem.mean_freq_mhz(),
            front_temp_c: front_temp,
            rear_temp_c: rear_temp,
            mean_throttle,
            max_throttle,
            cache: None,
            stages: None,
            sim,
        }
    }

    /// The parallelism spec in effect.
    pub fn spec(&self) -> &ParallelismSpec {
        &self.spec
    }

    /// The job in effect.
    pub fn job(&self) -> &TrainJob {
        &self.job
    }

    /// The cluster in effect.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

/// Builder for [`Experiment`].
#[derive(Debug, Default, Clone)]
pub struct ExperimentBuilder {
    cluster: Option<Arc<Cluster>>,
    job: Option<TrainJob>,
    spec: Option<ParallelismSpec>,
    schedule: PipelineSchedule,
    partition: Option<StagePartition>,
    placement: Option<Placement>,
    sim: Option<SimConfig>,
    inference: Option<InferenceConfig>,
    profiled: bool,
    cache: Option<Arc<SimCache>>,
    faults: Option<FaultPlan>,
    metrics: Option<MetricsShard>,
    self_profile: bool,
}

impl ExperimentBuilder {
    /// Target cluster.
    ///
    /// Accepts an owned [`Cluster`] or an [`Arc<Cluster>`]; executors pass
    /// a shared `Arc` so that per-point builds never clone the topology.
    pub fn cluster(mut self, cluster: impl Into<Arc<Cluster>>) -> Self {
        self.cluster = Some(cluster.into());
        self
    }

    /// Workload.
    pub fn job(mut self, job: TrainJob) -> Self {
        self.job = Some(job);
        self
    }

    /// Parallelism from a paper-style label (requires `cluster` first so DP
    /// can be inferred).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Incomplete`] if the cluster is unset and
    /// propagates label parse errors.
    pub fn parallelism(mut self, label: &str) -> Result<Self, CoreError> {
        let world = self
            .cluster
            .as_ref()
            .ok_or_else(|| CoreError::Incomplete("set cluster before parallelism".into()))?
            .num_gpus();
        self.spec = Some(ParallelismSpec::parse(label, world)?);
        Ok(self)
    }

    /// Parallelism from an explicit spec.
    pub fn spec(mut self, spec: ParallelismSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Pipeline schedule (default 1F1B).
    pub fn schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Explicit stage partition (default even split).
    pub fn partition(mut self, partition: StagePartition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Explicit rank placement (default identity).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Simulator configuration (default [`SimConfig::default`]).
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = Some(sim);
        self
    }

    /// Run inference instead of training.
    pub fn inference(mut self, cfg: InferenceConfig) -> Self {
        self.inference = Some(cfg);
        self
    }

    /// Record span streams during the run and attach the phase/energy
    /// attribution to `report.sim.profile` (default off; off costs nothing).
    pub fn profiled(mut self, profiled: bool) -> Self {
        self.profiled = profiled;
        self
    }

    /// Serve lowering and collective-plan construction from a shared
    /// [`SimCache`] (and publish what this run builds). Sweeps and
    /// searches attach one cache across all their points; per-run hit/miss
    /// counts land in [`RunReport::cache`](crate::RunReport::cache).
    pub fn cache(mut self, cache: Arc<SimCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Inject a [`FaultPlan`] into the run: scheduled failures plus the
    /// recovery cost model, reported as goodput / wasted energy / restarts
    /// on the result. An empty plan is equivalent to not calling this.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Publish live metrics to `shard` while the run executes: the engine's
    /// `sim_*` gauges (sampled at control boundaries, see
    /// [`Simulator::with_metrics`]) and the per-stage `sim_stage_seconds`
    /// histogram. A disabled shard costs nothing; the run's results are
    /// byte-identical either way.
    pub fn metrics(mut self, shard: MetricsShard) -> Self {
        self.metrics = Some(shard);
        self
    }

    /// Record host-side wall time per pipeline stage (`lower`,
    /// `plan_setup`, `event_loop`, `report`) into
    /// [`RunReport::stages`](crate::RunReport::stages). Off by default so
    /// reports compare equal across profiled and unprofiled runs.
    pub fn self_profile(mut self, on: bool) -> Self {
        self.self_profile = on;
        self
    }

    /// Finalize into an [`Experiment`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Incomplete`] when cluster, job or parallelism is
    /// missing.
    pub fn build(self) -> Result<Experiment, CoreError> {
        let cluster = self
            .cluster
            .ok_or_else(|| CoreError::Incomplete("cluster unset".into()))?;
        let job = self
            .job
            .ok_or_else(|| CoreError::Incomplete("job unset".into()))?;
        let spec = self
            .spec
            .ok_or_else(|| CoreError::Incomplete("parallelism unset".into()))?;
        Ok(Experiment {
            cluster,
            job,
            spec,
            schedule: self.schedule,
            partition: self.partition,
            placement: self.placement,
            sim: self.sim.unwrap_or_default(),
            inference: self.inference,
            profiled: self.profiled,
            cache: self.cache,
            faults: self.faults,
            metrics: self.metrics,
            self_profile: self.self_profile,
        })
    }

    /// Build and run in one call.
    ///
    /// # Errors
    ///
    /// See [`ExperimentBuilder::build`] and [`Experiment::run`].
    pub fn run(self) -> Result<RunReport, CoreError> {
        self.build()?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::single_hgx_node;
    use charllm_models::presets as models;

    fn small_job() -> TrainJob {
        TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8)
    }

    #[test]
    fn builder_requires_all_parts() {
        assert!(Experiment::builder().build().is_err());
        assert!(Experiment::builder()
            .cluster(single_hgx_node())
            .build()
            .is_err());
        assert!(Experiment::builder()
            .cluster(single_hgx_node())
            .job(small_job())
            .build()
            .is_err());
    }

    #[test]
    fn parallelism_requires_cluster_first() {
        assert!(Experiment::builder().parallelism("TP2-PP2").is_err());
    }

    #[test]
    fn end_to_end_run_produces_consistent_report() {
        let report = Experiment::builder()
            .cluster(single_hgx_node())
            .job(small_job())
            .parallelism("TP2-PP2")
            .unwrap()
            .sim_config(SimConfig::fast())
            .run()
            .unwrap();
        assert_eq!(report.cluster, "8xH200");
        assert_eq!(report.parallelism, "TP2-PP2");
        assert!(report.tokens_per_s > 0.0);
        assert!((report.tokens_per_s_per_gpu * 8.0 - report.tokens_per_s).abs() < 1.0);
        assert!(report.mean_power_w > 100.0);
        assert!(
            report.rear_temp_c > report.front_temp_c,
            "airflow imbalance visible"
        );
        assert!(report.peak_temp_c >= report.mean_temp_c);
    }

    #[test]
    fn profiled_run_attaches_attribution() {
        let report = Experiment::builder()
            .cluster(single_hgx_node())
            .job(small_job())
            .parallelism("TP2-PP2")
            .unwrap()
            .sim_config(SimConfig::fast())
            .profiled(true)
            .run()
            .unwrap();
        let profile = report.sim.profile.as_ref().expect("profiled run");
        assert_eq!(profile.world(), 8);
        assert!(!profile.top_spans.is_empty());
        // Per-rank phase time tiles the makespan.
        for b in &profile.rank_phases {
            let rel = (b.total_seconds() - profile.makespan_s).abs() / profile.makespan_s;
            assert!(
                rel < 1e-9,
                "rank phases {} vs makespan {}",
                b.total_seconds(),
                profile.makespan_s
            );
        }
        assert!(report.profile_summary().contains("compute"));
    }

    #[test]
    fn inference_experiment_runs() {
        let report = Experiment::builder()
            .cluster(single_hgx_node())
            .job(TrainJob::pretrain(models::gpt3_13b()))
            .parallelism("TP4-PP2")
            .unwrap()
            .inference(InferenceConfig {
                batch: 2,
                prompt_len: 128,
                decode_tokens: 4,
            })
            .sim_config(SimConfig::fast())
            .run()
            .unwrap();
        assert!(report.tokens_per_s > 0.0);
        assert!(report.step_time_s > 0.0);
    }

    #[test]
    fn thermal_aware_placement_accepted() {
        use charllm_parallel::thermal_aware;
        let cluster = single_hgx_node();
        let placement = thermal_aware::symmetric_placement(&cluster).unwrap();
        let spec = thermal_aware::thermal_pp_spec(&cluster).unwrap();
        let report = Experiment::builder()
            .cluster(cluster)
            .job(
                TrainJob::pretrain(models::gpt3_13b())
                    .with_global_batch(4)
                    .with_recompute(true),
            )
            .spec(spec)
            .placement(placement)
            .sim_config(SimConfig::fast())
            .run()
            .unwrap();
        assert!(report.tokens_per_s > 0.0);
    }
}
