/root/repo/target/debug/deps/charllm_trace-ad12ba5e08b07ca7.d: crates/trace/src/lib.rs crates/trace/src/builder.rs crates/trace/src/lower/mod.rs crates/trace/src/lower/grad_sync.rs crates/trace/src/lower/inference.rs crates/trace/src/lower/layer.rs crates/trace/src/task.rs crates/trace/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_trace-ad12ba5e08b07ca7.rmeta: crates/trace/src/lib.rs crates/trace/src/builder.rs crates/trace/src/lower/mod.rs crates/trace/src/lower/grad_sync.rs crates/trace/src/lower/inference.rs crates/trace/src/lower/layer.rs crates/trace/src/task.rs crates/trace/src/trace.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/builder.rs:
crates/trace/src/lower/mod.rs:
crates/trace/src/lower/grad_sync.rs:
crates/trace/src/lower/inference.rs:
crates/trace/src/lower/layer.rs:
crates/trace/src/task.rs:
crates/trace/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
