/root/repo/target/release/deps/charllm_sim-ae5f4803e3105699.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

/root/repo/target/release/deps/libcharllm_sim-ae5f4803e3105699.rlib: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

/root/repo/target/release/deps/libcharllm_sim-ae5f4803e3105699.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/result.rs:
