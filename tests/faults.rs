//! Fault & resilience scenario engine: end-to-end behavior.
//!
//! Pins the three load-bearing properties of the fault engine:
//!
//! 1. **No-fault identity** — attaching [`FaultPlan::none`] leaves results
//!    byte-identical to an engine without fault support (and therefore to
//!    the reference engine, which has none).
//! 2. **Physics under degradation** — a degraded link slows the run but
//!    still moves every payload byte (conservation survives the bandwidth
//!    override), and each fault kind perturbs exactly its own channel.
//! 3. **Recovery cost model** — fail-stop + checkpoint/restart produces
//!    goodput strictly below fault-free throughput, nonzero wasted energy,
//!    and restart/downtime accounting, with MTBF sweeps served by the
//!    shared memoization cache on repeated points.

use std::sync::Arc;

use charllm::prelude::*;
use charllm::sweep::Sweep;
use charllm_hw::{Cluster, GpuId, GpuModel, NodeLayout};
use charllm_models::{presets as models, TrainJob as Job};
use charllm_net::{ChunkingPolicy, CollectiveKind};
use charllm_parallel::{Placement, StagePartition};
use charllm_sim::reference::ReferenceSimulator;
use charllm_sim::{FaultPlan, RecoveryPolicy, SimError, SimResult, Simulator};
use charllm_trace::builder::{CollKey, TraceBuilder};
use charllm_trace::lower::{lower_train, DeviceHints};
use charllm_trace::trace::TraceMeta;
use charllm_trace::ExecutionTrace;

fn one_node_cluster() -> Cluster {
    Cluster::new("8xH200", GpuModel::H200.spec(), NodeLayout::hgx(), 1).unwrap()
}

fn gpt3_trace(cluster: &Cluster, global_batch: usize) -> ExecutionTrace {
    let job = Job::pretrain(models::gpt3_13b()).with_global_batch(global_batch);
    let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
    let partition = StagePartition::even(40, 2).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
        .unwrap()
        .trace
}

fn run_with(
    cluster: &Cluster,
    trace: &ExecutionTrace,
    cfg: SimConfig,
    plan: &FaultPlan,
) -> SimResult {
    let placement = Placement::identity(cluster, trace.world()).unwrap();
    Simulator::new(cluster, &placement, trace, cfg)
        .unwrap()
        .with_faults(plan)
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn empty_fault_plan_is_byte_identical_three_ways() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 3;
    cfg.warmup_iterations = 1;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let plain = Simulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    let with_none = run_with(&cluster, &trace, cfg, &FaultPlan::none());
    let reference = ReferenceSimulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    let plain = serde_json::to_string(&plain).unwrap();
    let with_none = serde_json::to_string(&with_none).unwrap();
    let reference = serde_json::to_string(&reference).unwrap();
    assert_eq!(plain, with_none, "FaultPlan::none() perturbed the engine");
    assert_eq!(
        plain, reference,
        "fault threading perturbed the reference parity"
    );
}

#[test]
fn degraded_link_conserves_payload_and_slows_the_run() {
    // The 2-rank AllReduce from the golden suite, re-run with every link at
    // a quarter of its bandwidth for the whole run: total fabric traffic
    // must still equal exactly 2 × the lowered payload (degradation stalls
    // bytes, never drops them) while the clock runs measurably longer.
    let cluster = one_node_cluster();
    let bytes = 1 << 20;
    let mut b = TraceBuilder::new(2);
    let id = b.collective(
        CollKey {
            site: "ar",
            mb: 0,
            layer: 0,
            aux: 0,
            group_lead: 0,
        },
        CollectiveKind::AllReduce,
        bytes,
        vec![0, 1],
        ChunkingPolicy::nccl_default(),
        false,
    );
    b.blocking(0, id);
    b.blocking(1, id);
    let trace = b.build(TraceMeta {
        tokens_per_iteration: 1,
        ..Default::default()
    });
    let placement = Placement::identity(&cluster, 2).unwrap();
    let mut cfg = SimConfig::fast();
    cfg.thermal_feedback = false;
    let pristine = Simulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    let mut plan = FaultPlan::none();
    for link in 0..cluster.num_links() {
        plan = plan.link_degrade(link as u32, 0.0, 1e6, 0.25);
    }
    let degraded = run_with(&cluster, &trace, cfg, &plan);
    let lowered = charllm_net::lower_collective(
        CollectiveKind::AllReduce,
        bytes,
        &[GpuId(0), GpuId(1)],
        &cluster,
        ChunkingPolicy::nccl_default(),
    )
    .unwrap();
    let payload: f64 = lowered
        .flows
        .iter()
        .filter(|f| {
            let route = f.route(&cluster).unwrap();
            !route.is_empty() && f.work_bytes(&cluster, &route) > 0.0
        })
        .map(|f| f.bytes as f64)
        .sum();
    let measured: f64 = (0..2).map(|g| degraded.traffic.fabric(g)).sum();
    let expected = 2.0 * payload;
    let rel = (measured - expected).abs() / expected;
    assert!(
        rel < 1e-9,
        "degraded fabric traffic {measured} vs expected {expected} (rel err {rel:e})"
    );
    assert!(
        degraded.sim_time_s > pristine.sim_time_s * 1.5,
        "quarter bandwidth should stretch the run: {} vs {}",
        degraded.sim_time_s,
        pristine.sim_time_s
    );
}

#[test]
fn fail_stop_with_checkpoint_restart_cuts_goodput() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 8);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 4;
    cfg.warmup_iterations = 0;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let baseline = Simulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    assert!(
        baseline.sim_time_s > 0.5,
        "fault time below must land inside the run"
    );
    let plan =
        FaultPlan::none()
            .gpu_fail_stop(0, 0.5)
            .with_recovery(RecoveryPolicy::CheckpointRestart {
                checkpoint_interval_s: 10.0,
                restart_latency_s: 0.3,
            });
    let faulted = run_with(&cluster, &trace, cfg, &plan);
    assert_eq!(faulted.restarts, 1);
    assert!(
        faulted.fault_downtime_s > 0.7,
        "restart latency + full rollback expected, got {}",
        faulted.fault_downtime_s
    );
    assert!(
        faulted.energy_wasted_j > 0.0,
        "an outage spanning many control periods must waste energy"
    );
    assert!(faulted.energy_wasted_per_failure_j() > 0.0);
    assert!(
        faulted.goodput_tokens_per_s < faulted.tokens_per_s,
        "goodput {} must sit strictly below the productive rate {}",
        faulted.goodput_tokens_per_s,
        faulted.tokens_per_s
    );
    assert!(
        faulted.goodput_tokens_per_s < baseline.tokens_per_s,
        "goodput {} must sit strictly below fault-free throughput {}",
        faulted.goodput_tokens_per_s,
        baseline.tokens_per_s
    );
    // The baseline reports fault-free identities.
    assert_eq!(baseline.restarts, 0);
    assert_eq!(baseline.energy_wasted_j, 0.0);
    assert_eq!(baseline.goodput_tokens_per_s, baseline.tokens_per_s);
}

#[test]
fn straggler_rank_stretches_step_time() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 8);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 2;
    cfg.warmup_iterations = 0;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let baseline = Simulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    let plan = FaultPlan::none().straggler(0, 0.0, 1e6, 4.0);
    let slowed = run_with(&cluster, &trace, cfg, &plan);
    assert!(
        slowed.step_time_s > baseline.step_time_s * 1.2,
        "a 4x straggler must stretch the step: {} vs {}",
        slowed.step_time_s,
        baseline.step_time_s
    );
}

#[test]
fn thermal_runaway_raises_target_gpu_throttle() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 8);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 3;
    cfg.warmup_iterations = 0;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let baseline = Simulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    let plan = FaultPlan::none().thermal_runaway(0, 0.0, 1e6, 40.0);
    let heated = run_with(&cluster, &trace, cfg, &plan);
    // Thermal mass smooths short runs, so the guaranteed signal is the
    // temperature channel itself; throttle residency may only deepen on
    // longer horizons and must never recede.
    assert!(
        heated.telemetry.temp(0).peak() > baseline.telemetry.temp(0).peak() + 1.0,
        "a +40C inlet must heat the target GPU: {} vs {}",
        heated.telemetry.temp(0).peak(),
        baseline.telemetry.temp(0).peak()
    );
    assert!(
        (heated.telemetry.temp(1).peak() - baseline.telemetry.temp(1).peak()).abs() < 1.0,
        "the runaway targets one GPU, not its neighbors"
    );
    assert!(heated.thermal_throttle_ratio[0] >= baseline.thermal_throttle_ratio[0]);
}

#[test]
fn invalid_fault_plans_are_rejected() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 8);
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    for plan in [
        FaultPlan::none().gpu_fail_stop(99, 1.0),
        FaultPlan::none().link_degrade(0, 1.0, 1.0, 0.0),
        FaultPlan::none().straggler(64, 0.0, 1.0, 2.0),
        FaultPlan::none().gpu_fail_stop(0, f64::NAN),
    ] {
        let err = Simulator::new(&cluster, &placement, &trace, SimConfig::fast())
            .unwrap()
            .with_faults(&plan)
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, SimError::InvalidFaultPlan(_)),
            "expected InvalidFaultPlan, got {err}"
        );
    }
}

#[test]
fn mtbf_sweep_hits_shared_cache_on_repeated_points() {
    let cluster = Arc::new(single_hgx_node());
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(8);
    let spec = ParallelismSpec::parse("TP2-PP2", cluster.num_gpus()).unwrap();
    let cache = Arc::new(SimCache::new());
    let plan = FaultPlan::periodic_fail_stops(16.0, cluster.num_gpus() as u32, 10.0).with_recovery(
        RecoveryPolicy::CheckpointRestart {
            checkpoint_interval_s: 1.0,
            restart_latency_s: 0.2,
        },
    );
    let sweep = |p: FaultPlan| {
        Sweep::new(Arc::clone(&cluster), job.clone(), vec![spec])
            .with_sim_config(SimConfig::fast())
            .with_cache(Arc::clone(&cache))
            .with_faults(p)
            .strict()
            .run()
            .unwrap()
    };
    let first = sweep(plan.clone());
    let stats = first[0].cache.unwrap();
    assert_eq!(stats.lowered_misses, 1, "cold cache lowers the trace");
    // The identical MTBF point again (a repeated sweep point): fully served.
    let second = sweep(plan);
    let stats = second[0].cache.unwrap();
    assert_eq!(stats.lowered_hits, 1, "same fault plan must hit");
    assert_eq!(stats.plan_hits, 1);
    assert_eq!(
        serde_json::to_string(&first[0].sim).unwrap(),
        serde_json::to_string(&second[0].sim).unwrap(),
        "cache reuse must not change faulted results"
    );
    // A different MTBF is a different scenario: the fault plan participates
    // in the key, so it must miss instead of serving a stale schedule.
    let other = FaultPlan::periodic_fail_stops(8.0, cluster.num_gpus() as u32, 10.0).with_recovery(
        RecoveryPolicy::CheckpointRestart {
            checkpoint_interval_s: 1.0,
            restart_latency_s: 0.2,
        },
    );
    let third = sweep(other);
    let stats = third[0].cache.unwrap();
    assert_eq!(stats.lowered_misses, 1, "different fault plan must miss");
}
