//! Transformer architecture descriptions and parameter counting.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Mixture-of-Experts configuration of a [`TransformerArch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Number of experts per MoE layer.
    pub num_experts: usize,
    /// Experts activated per token (Mixtral uses top-2 routing).
    pub top_k: usize,
}

/// An analytic transformer architecture.
///
/// Covers both dense (GPT-3, Llama-3) and MoE (Mixtral) decoder-only models.
/// All of the paper's system-level quantities — parameters, FLOPs per token,
/// activation bytes, communication volumes — derive from these fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerArch {
    /// Model display name (e.g. `"GPT3-175B"`).
    pub name: String,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Number of attention (query) heads.
    pub num_heads: usize,
    /// Number of key/value heads (GQA; equals `num_heads` for MHA).
    pub num_kv_heads: usize,
    /// FFN intermediate dimension (per expert for MoE).
    pub ffn_hidden: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Whether the MLP is gated (SwiGLU: 3 weight matrices) as in
    /// Llama/Mixtral, vs. the classic 2-matrix GELU MLP of GPT-3.
    pub gated_mlp: bool,
    /// Whether input and output embeddings share weights (GPT-3: yes).
    pub tied_embeddings: bool,
    /// MoE configuration; `None` for dense models.
    pub moe: Option<MoeConfig>,
    /// Default training sequence length.
    pub default_seq_len: usize,
}

impl TransformerArch {
    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidArch`] when dimensions are inconsistent
    /// (hidden not divisible by heads, kv heads not dividing heads, zero
    /// layers, or `top_k > num_experts`).
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.num_layers == 0 || self.hidden == 0 || self.num_heads == 0 {
            return Err(ModelError::InvalidArch(
                "dimensions must be non-zero".into(),
            ));
        }
        if !self.hidden.is_multiple_of(self.num_heads) {
            return Err(ModelError::InvalidArch(format!(
                "hidden {} not divisible by {} heads",
                self.hidden, self.num_heads
            )));
        }
        if self.num_kv_heads == 0 || !self.num_heads.is_multiple_of(self.num_kv_heads) {
            return Err(ModelError::InvalidArch(format!(
                "kv heads {} must divide query heads {}",
                self.num_kv_heads, self.num_heads
            )));
        }
        if let Some(moe) = &self.moe {
            if moe.top_k == 0 || moe.top_k > moe.num_experts {
                return Err(ModelError::InvalidArch(format!(
                    "top_k {} must be in 1..={} experts",
                    moe.top_k, moe.num_experts
                )));
            }
        }
        Ok(())
    }

    /// Dimension of one attention head.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.num_heads
    }

    /// Whether this is a Mixture-of-Experts model.
    pub fn is_moe(&self) -> bool {
        self.moe.is_some()
    }

    /// Attention parameters per layer: Q and O projections (`h×h` each) plus
    /// K and V projections (`h × kv_heads·head_dim` each).
    pub fn attn_params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let kv = (self.num_kv_heads * self.head_dim()) as u64;
        2 * h * h + 2 * h * kv
    }

    /// Parameters of one MLP/expert block (`2·h·f`, or `3·h·f` gated).
    pub fn mlp_params_per_block(&self) -> u64 {
        let mats = if self.gated_mlp { 3 } else { 2 };
        mats * self.hidden as u64 * self.ffn_hidden as u64
    }

    /// All MLP parameters in one layer: the dense block, or every expert plus
    /// the router for MoE.
    pub fn mlp_params_per_layer(&self) -> u64 {
        match &self.moe {
            None => self.mlp_params_per_block(),
            Some(moe) => {
                moe.num_experts as u64 * self.mlp_params_per_block()
                    + (self.hidden * moe.num_experts) as u64
            }
        }
    }

    /// Total parameters of one transformer layer (attention + MLP/experts;
    /// norms and biases are negligible and omitted).
    pub fn params_per_layer(&self) -> u64 {
        self.attn_params_per_layer() + self.mlp_params_per_layer()
    }

    /// Embedding parameters (input, plus output head when untied).
    pub fn embedding_params(&self) -> u64 {
        let one = (self.vocab * self.hidden) as u64;
        if self.tied_embeddings {
            one
        } else {
            2 * one
        }
    }

    /// Total model parameters.
    ///
    /// ```
    /// use charllm_models::presets;
    /// let m = presets::mixtral_8x22b();
    /// assert!((m.total_params() as f64 - 141e9).abs() / 141e9 < 0.05);
    /// ```
    pub fn total_params(&self) -> u64 {
        self.params_per_layer() * self.num_layers as u64 + self.embedding_params()
    }

    /// Parameters *active* per token (for MoE only `top_k` experts fire).
    pub fn active_params(&self) -> u64 {
        let per_layer = match &self.moe {
            None => self.params_per_layer(),
            Some(moe) => {
                self.attn_params_per_layer()
                    + moe.top_k as u64 * self.mlp_params_per_block()
                    + (self.hidden * moe.num_experts) as u64
            }
        };
        per_layer * self.num_layers as u64 + self.embedding_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn head_dim_divides() {
        let m = presets::llama3_70b();
        assert_eq!(m.head_dim(), 128);
    }

    #[test]
    fn invalid_archs_rejected() {
        let mut a = presets::gpt3_175b();
        a.hidden = 100; // not divisible by 96 heads
        assert!(a.validate().is_err());

        let mut b = presets::llama3_70b();
        b.num_kv_heads = 7; // doesn't divide 64
        assert!(b.validate().is_err());

        let mut c = presets::mixtral_8x7b();
        c.moe = Some(MoeConfig {
            num_experts: 8,
            top_k: 9,
        });
        assert!(c.validate().is_err());

        let mut d = presets::gpt3_175b();
        d.num_layers = 0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn all_presets_validate() {
        for m in presets::all_models() {
            m.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", m.name));
        }
    }

    #[test]
    fn moe_active_params_less_than_total() {
        let m = presets::mixtral_8x7b();
        assert!(m.active_params() < m.total_params());
        // Mixtral-8x7B activates ~13B of 47B.
        let active = m.active_params() as f64;
        assert!((10e9..16e9).contains(&active), "active = {active}");
    }

    #[test]
    fn dense_active_equals_total() {
        let m = presets::gpt3_175b();
        assert_eq!(m.active_params(), m.total_params());
    }

    #[test]
    fn gqa_shrinks_attention() {
        let llama = presets::llama3_70b(); // 8 kv heads
        let mut mha = llama.clone();
        mha.num_kv_heads = mha.num_heads;
        assert!(llama.attn_params_per_layer() < mha.attn_params_per_layer());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_arch() -> impl Strategy<Value = TransformerArch> {
        (1usize..=64, 1usize..=64, 1usize..=8, 1usize..=4, 1usize..=8).prop_map(
            |(layers, heads, head_dim_x, kv_div, ffn_x)| {
                let hidden = heads * head_dim_x * 16;
                let num_kv_heads = (heads / kv_div).max(1);
                // Keep kv_heads dividing heads.
                let num_kv_heads = (1..=heads)
                    .rev()
                    .find(|k| heads % k == 0 && *k <= num_kv_heads)
                    .unwrap_or(1);
                TransformerArch {
                    name: "prop".to_string(),
                    num_layers: layers,
                    hidden,
                    num_heads: heads,
                    num_kv_heads,
                    ffn_hidden: hidden * ffn_x,
                    vocab: 32000,
                    gated_mlp: ffn_x % 2 == 0,
                    tied_embeddings: layers % 2 == 0,
                    moe: if layers % 3 == 0 {
                        Some(MoeConfig {
                            num_experts: 8,
                            top_k: 2,
                        })
                    } else {
                        None
                    },
                    default_seq_len: 2048,
                }
            },
        )
    }

    proptest! {
        #[test]
        fn generated_archs_validate(arch in arb_arch()) {
            prop_assert!(arch.validate().is_ok(), "{arch:?}");
        }

        #[test]
        fn active_params_never_exceed_total(arch in arb_arch()) {
            prop_assert!(arch.active_params() <= arch.total_params());
        }

        #[test]
        fn params_monotone_in_layers(arch in arb_arch()) {
            let mut bigger = arch.clone();
            bigger.num_layers += 1;
            prop_assert!(bigger.total_params() > arch.total_params());
        }

        #[test]
        fn flops_positive_and_monotone_in_seq(arch in arb_arch()) {
            use crate::flops::train_flops_per_token;
            let f1 = train_flops_per_token(&arch, 1024);
            let f2 = train_flops_per_token(&arch, 4096);
            prop_assert!(f1 > 0.0);
            prop_assert!(f2 >= f1);
        }

        #[test]
        fn activation_memory_monotone_in_tp(arch in arb_arch(), mb in 1usize..8) {
            use crate::memory::layer_activation_bytes;
            let t1 = layer_activation_bytes(&arch, 2048, mb, 1, false);
            let t2 = layer_activation_bytes(&arch, 2048, mb, 2, false);
            let t8 = layer_activation_bytes(&arch, 2048, mb, 8, false);
            prop_assert!(t2 <= t1);
            prop_assert!(t8 <= t2);
            let rec = layer_activation_bytes(&arch, 2048, mb, 1, true);
            prop_assert!(rec <= t1);
        }
    }
}
