/root/repo/target/debug/deps/serde_json-3426ffb44976e422.d: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/print.rs

/root/repo/target/debug/deps/libserde_json-3426ffb44976e422.rlib: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/print.rs

/root/repo/target/debug/deps/libserde_json-3426ffb44976e422.rmeta: vendor/serde_json/src/lib.rs vendor/serde_json/src/parse.rs vendor/serde_json/src/print.rs

vendor/serde_json/src/lib.rs:
vendor/serde_json/src/parse.rs:
vendor/serde_json/src/print.rs:
