//! Sweep hot-path benchmark: cross-point memoization (`SimCache`) on a
//! fig-03-style power-cap ablation — 32 points replaying the *same*
//! workload under different simulator knobs, the pattern where the cache
//! pays off (one lowering + one collective-plan set serve every point).
//!
//! Measures the same 32-point ablation twice, serially (so the ratio
//! isolates memoization from pool scheduling): cold (`SimCache` disabled,
//! every point lowers its trace and routes its collectives from scratch)
//! vs memoized (one shared cache). Then re-runs memoized across a worker
//! pool to prove pool sharing keeps results byte-identical. Emits a
//! `BENCH_sweep.json` record with the speedup, cache counters, and the
//! engine stats of one warm point (shared-plan hits, scheduler heap
//! counters).

use std::sync::Arc;
use std::time::Instant;

use charllm::prelude::*;
use charllm::report::RunReport;
use charllm_hw::Cluster;
use charllm_models::{presets as models, TrainJob};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::{SharedPlans, SimConfig, Simulator};
use charllm_trace::lower::{lower_train, DeviceHints};

use charllm_bench::save_json;

const POINTS: usize = 32;

fn job() -> TrainJob {
    TrainJob::pretrain(models::mixtral_8x7b()).with_global_batch(8)
}

fn spec(cluster: &Cluster) -> ParallelismSpec {
    // MoE under expert parallelism: AllToAll dispatch/combine plans are the
    // costliest to route, which is exactly the work the plan cache elides.
    ParallelismSpec::infer_dp(1, 4, 8, cluster.num_gpus(), false).unwrap()
}

fn sim_config(cap_w: f64) -> SimConfig {
    let mut cfg = SimConfig::fast();
    // Node 0 capped: the §1 failure-anecdote knob — a pure simulator
    // setting, so every point shares one trace and one plan set.
    cfg.node_power_cap = Some((0, cap_w));
    // Coarser control/telemetry cadence: the cap still bites every control
    // step, but per-point replay does less bookkeeping.
    cfg.control_period_s = 0.02;
    cfg.sample_period_s = 0.2;
    cfg
}

/// The 32 power caps swept (watts, 340..650).
fn caps() -> Vec<f64> {
    (0..POINTS).map(|i| 340.0 + 10.0 * i as f64).collect()
}

fn run_points(
    cluster: &Arc<Cluster>,
    workers: usize,
    cache: Option<&Arc<SimCache>>,
) -> (Vec<RunReport>, f64) {
    let caps = caps();
    let t = Instant::now();
    let reports = Executor::with_workers(workers).run(&caps, |_, cap| {
        let mut builder = Experiment::builder()
            .cluster(Arc::clone(cluster))
            .job(job())
            .spec(spec(cluster))
            .sim_config(sim_config(*cap));
        if let Some(cache) = cache {
            builder = builder.cache(Arc::clone(cache));
        }
        builder.run().unwrap()
    });
    (reports, t.elapsed().as_secs_f64())
}

fn main() {
    let cluster = Arc::new(hgx_h200_cluster());
    println!(
        "workload: mixtral_8x7b PP4-EP8 on {} GPUs, {POINTS}-point power-cap ablation",
        cluster.num_gpus()
    );

    // Interleaved min-of-5 serial head-to-head so ambient load hits both
    // sides alike.
    let mut cold_wall_s = f64::INFINITY;
    let mut warm_wall_s = f64::INFINITY;
    let mut cold_reports = None;
    let mut warm_reports = None;
    let mut warm_cache_stats = None;
    for _ in 0..5 {
        let (reports, wall) = run_points(&cluster, 1, None);
        cold_wall_s = cold_wall_s.min(wall);
        cold_reports = Some(reports);
        let cache = Arc::new(SimCache::new());
        let (reports, wall) = run_points(&cluster, 1, Some(&cache));
        warm_wall_s = warm_wall_s.min(wall);
        warm_reports = Some(reports);
        warm_cache_stats = Some(cache.stats());
    }
    let cold_reports = cold_reports.unwrap();
    let warm_reports = warm_reports.unwrap();
    let warm_cache_stats = warm_cache_stats.unwrap();
    assert_eq!(
        warm_cache_stats.lowered_hits as usize,
        POINTS - 1,
        "all but the first point must reuse the lowered trace"
    );
    assert_eq!(warm_cache_stats.plan_hits as usize, POINTS - 1);

    // Memoization must be invisible in the results.
    for (cold, warm) in cold_reports.iter().zip(&warm_reports) {
        assert_eq!(
            serde_json::to_string(&cold.sim).unwrap(),
            serde_json::to_string(&warm.sim).unwrap(),
            "memoized point diverged from cold point"
        );
    }

    // Pool sharing: the same ablation across a worker pool, one cache.
    let pool_cache = Arc::new(SimCache::new());
    let (pool_reports, pool_wall_s) = run_points(&cluster, 4, Some(&pool_cache));
    for (serial, pooled) in warm_reports.iter().zip(&pool_reports) {
        assert_eq!(
            serde_json::to_string(&serial.sim).unwrap(),
            serde_json::to_string(&pooled.sim).unwrap(),
            "pooled point diverged from serial point"
        );
    }
    let pool_stats = pool_cache.stats();
    assert!(
        pool_stats.hits() > 0,
        "worker pool never shared a cached artifact"
    );

    // Engine-level stats of one warm point: lower once, publish the plans,
    // replay — shared_plan_hits proves the second run served every
    // collective from the shared set; heap counters come along.
    let lowered = lower_train(
        &job(),
        &spec(&cluster),
        PipelineSchedule::OneFOneB,
        &StagePartition::even(job().arch.num_layers, spec(&cluster).pp).unwrap(),
        &DeviceHints::for_spec(cluster.gpu()),
    )
    .unwrap();
    let placement = Placement::identity(&cluster, lowered.trace.world()).unwrap();
    let shared = Arc::new(SharedPlans::for_trace(&lowered.trace));
    let cfg = sim_config(caps()[0]);
    let (_, cold_stats) = Simulator::new(&cluster, &placement, &lowered.trace, cfg)
        .unwrap()
        .with_shared_plans(Arc::clone(&shared))
        .unwrap()
        .run_stats()
        .unwrap();
    let (_, warm_stats) = Simulator::new(&cluster, &placement, &lowered.trace, cfg)
        .unwrap()
        .with_shared_plans(Arc::clone(&shared))
        .unwrap()
        .run_stats()
        .unwrap();
    assert_eq!(warm_stats.plan_builds, 0, "warm plan set builds nothing");
    assert!(warm_stats.shared_plan_hits > 0);

    let speedup = cold_wall_s / warm_wall_s;
    println!(
        "cold {cold_wall_s:.3}s | memoized {warm_wall_s:.3}s | speedup {speedup:.2}x | \
         pool(4 workers) {pool_wall_s:.3}s"
    );
    println!(
        "cache: {warm_cache_stats} | shared plans: {} builds cold, {} hits warm",
        cold_stats.plan_builds, warm_stats.shared_plan_hits
    );

    let record = serde_json::json!({
        "workload": "mixtral_8x7b_pp4_ep8_32gpu_power_cap_ablation",
        "points": POINTS,
        "cold_wall_s": cold_wall_s,
        "memoized_wall_s": warm_wall_s,
        "memoized_over_cold": speedup,
        "pool_wall_s": pool_wall_s,
        "cache_stats": {
            "lowered_hits": warm_cache_stats.lowered_hits,
            "lowered_misses": warm_cache_stats.lowered_misses,
            "plan_hits": warm_cache_stats.plan_hits,
            "plan_misses": warm_cache_stats.plan_misses,
        },
        "engine_stats_cold_point": cold_stats,
        "engine_stats_warm_point": warm_stats,
    });
    save_json("BENCH_sweep", &record);
}
