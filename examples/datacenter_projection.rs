//! Datacenter-scale projection (§7.1, Fig. 22): extrapolate a measured
//! training step to thousands of GPUs by scaling the data-parallel degree
//! and modeling the gradient AllReduce, at 100 Gbps and 800 Gbps fabrics.
//!
//! ```sh
//! cargo run --release --example datacenter_projection
//! ```

use charllm::prelude::*;
use charllm_hw::LinkSpec;
use charllm_net::projection::{project_dp_scaling, MeasuredStep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Measure GPT3-175B TP2-PP16 at DP=1 on the simulated 32xH200 cluster.
    let cluster = hgx_h200_cluster();
    let job = TrainJob::pretrain(gpt3_175b())
        .with_global_batch(32)
        .with_recompute(true);
    let report = Experiment::builder()
        .cluster(cluster)
        .job(job.clone())
        .parallelism("TP2-PP16")?
        .run()?;
    let mean = report.mean_kernel_time();
    let base = MeasuredStep {
        compute_s: mean.compute_total(),
        comm_s: mean.comm_total(),
        grad_bytes_per_rank: (job.arch.total_params() / 32) * 2,
        tokens_per_step: job.tokens_per_step(),
        base_world: 32,
    };
    println!(
        "measured base: compute {:.2}s, comm {:.2}s, {:.1} GB grads/rank\n",
        base.compute_s,
        base.comm_s,
        base.grad_bytes_per_rank as f64 / 1e9
    );

    let dps = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    for (name, nic) in [
        ("100G", LinkSpec::ib_100g()),
        ("800G", LinkSpec::ib_gbps(800.0)),
    ] {
        println!("== {name} InfiniBand ==");
        println!(
            "{:>6} {:>8} {:>10} {:>12} {:>14} {:>10}",
            "dp", "gpus", "step s", "allreduce s", "tok/s/gpu", "scaling"
        );
        for p in project_dp_scaling(&base, &dps, &nic, 1) {
            println!(
                "{:>6} {:>8} {:>10.3} {:>12.3} {:>14.1} {:>9.1}%",
                p.dp,
                p.num_gpus,
                p.step_s,
                p.allreduce_s,
                p.per_gpu_throughput,
                p.scaling_efficiency * 100.0
            );
        }
        println!();
    }
    println!(
        "At 100 Gbps the DP AllReduce dominates at scale and strong scaling\n\
         collapses; an 800 Gbps fabric recovers most of the lost efficiency."
    );
    Ok(())
}
