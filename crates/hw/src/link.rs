//! Interconnect link models.
//!
//! Every shared transmission resource in a cluster is a [`LinkSpec`]: a GPU's
//! NVLink/xGMI fabric port, its PCIe lanes to the host, the per-package xGMI
//! bus inside an MI250, and the per-node InfiniBand NIC. Transfers consume
//! bandwidth on every link along their route, which is how the simulator
//! reproduces the paper's PCIe/NIC contention effects (§4.2).

use serde::{Deserialize, Serialize};

/// Identifier of a link within a [`crate::Cluster`]'s link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// The functional class of a link, used for traffic accounting (Fig. 5) and
/// for the message-efficiency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// A GPU's NVLink port into the node's NVSwitch fabric.
    NvLink,
    /// Intra-package xGMI between the two GCDs of one MI250.
    XgmiPackage,
    /// A GCD's inter-package xGMI port within a node.
    XgmiPort,
    /// A GPU's PCIe connection to the host (traversed by inter-node traffic).
    Pcie,
    /// A node's InfiniBand NIC (shared by all GPUs of the node).
    Nic,
    /// A shared switch tier of a multi-tier fabric (leaf or spine). Lives
    /// inside the network, not on any GPU or node — telemetry counters never
    /// see it, so it is charged to no GPU's traffic accounting.
    Switch,
}

impl LinkClass {
    /// Whether traffic on this class counts as "PCIe traffic" in the paper's
    /// telemetry (NVML reports PCIe counters; inter-node traffic shows up
    /// there because it is staged over PCIe to the NIC).
    pub fn counts_as_pcie(self) -> bool {
        matches!(self, LinkClass::Pcie | LinkClass::Nic)
    }

    /// Whether this class is internal to a node.
    pub fn is_intra_node(self) -> bool {
        !matches!(self, LinkClass::Nic | LinkClass::Switch)
    }
}

impl std::fmt::Display for LinkClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LinkClass::NvLink => "nvlink",
            LinkClass::XgmiPackage => "xgmi-pkg",
            LinkClass::XgmiPort => "xgmi",
            LinkClass::Pcie => "pcie",
            LinkClass::Nic => "nic",
            LinkClass::Switch => "switch",
        };
        f.write_str(s)
    }
}

/// A shared transmission resource.
///
/// Bandwidth is per direction; the simulator fair-shares it among concurrent
/// flows. `latency_us` is the base propagation/handshake latency per message
/// and `per_message_us` models per-message software/DMA overhead — the term
/// that makes many small unchunked SendRecv messages underutilize bandwidth
/// (the paper's TP+PP inefficiency, §4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Functional class.
    pub class: LinkClass,
    /// Peak bandwidth per direction in GB/s (1e9 bytes/s).
    pub bw_gbps: f64,
    /// Base message latency in microseconds.
    pub latency_us: f64,
    /// Additional fixed overhead per message in microseconds.
    pub per_message_us: f64,
}

impl LinkSpec {
    /// Construct a link of a class with explicit bandwidth/latency.
    pub fn new(class: LinkClass, bw_gbps: f64, latency_us: f64, per_message_us: f64) -> Self {
        LinkSpec {
            class,
            bw_gbps,
            latency_us,
            per_message_us,
        }
    }

    /// NVLink 4 port via NVSwitch: 450 GB/s per direction.
    pub fn nvlink4() -> Self {
        LinkSpec::new(LinkClass::NvLink, 450.0, 2.0, 1.5)
    }

    /// Intra-package xGMI between MI250 GCDs: ~400 GB/s aggregate.
    pub fn xgmi_package() -> Self {
        LinkSpec::new(LinkClass::XgmiPackage, 400.0, 2.0, 1.5)
    }

    /// Inter-package xGMI port of one GCD: ~64 GB/s.
    pub fn xgmi_port() -> Self {
        LinkSpec::new(LinkClass::XgmiPort, 64.0, 2.5, 2.0)
    }

    /// PCIe Gen5 x16: 64 GB/s per direction (H100/H200 hosts).
    pub fn pcie_gen5() -> Self {
        LinkSpec::new(LinkClass::Pcie, 64.0, 5.0, 3.0)
    }

    /// PCIe Gen4 x16: 32 GB/s per direction (MI250 hosts).
    pub fn pcie_gen4() -> Self {
        LinkSpec::new(LinkClass::Pcie, 32.0, 5.0, 3.0)
    }

    /// 100 Gbps InfiniBand NIC: 12.5 GB/s, shared per node.
    pub fn ib_100g() -> Self {
        LinkSpec::new(LinkClass::Nic, 12.5, 8.0, 5.0)
    }

    /// InfiniBand NIC at an arbitrary line rate in Gbps (e.g. 800 for the
    /// §7.1 bandwidth-scaling projection).
    pub fn ib_gbps(gbps: f64) -> Self {
        LinkSpec::new(LinkClass::Nic, gbps / 8.0, 8.0, 5.0)
    }

    /// A copy of this link with bandwidth scaled by `factor` — the spec a
    /// degraded link presents while a fault is active (e.g. a flapping NIC
    /// renegotiating at a lower rate). Latency and per-message overhead are
    /// unchanged: degradation models lost lanes, not longer wires.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn degraded(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0, 1], got {factor}"
        );
        LinkSpec {
            bw_gbps: self.bw_gbps * factor,
            ..self.clone()
        }
    }

    /// Time in seconds for a single message of `bytes` to traverse this link
    /// alone (no contention): latency + overhead + serialization.
    ///
    /// ```
    /// use charllm_hw::LinkSpec;
    /// let nic = LinkSpec::ib_100g();
    /// let t = nic.message_time_s(12_500_000_000.0); // 12.5 GB at 12.5 GB/s
    /// assert!(t > 1.0 && t < 1.01);
    /// ```
    pub fn message_time_s(&self, bytes: f64) -> f64 {
        (self.latency_us + self.per_message_us) * 1e-6 + bytes / (self.bw_gbps * 1e9)
    }

    /// Effective bandwidth (GB/s) achieved by back-to-back messages of a
    /// given size: small messages are dominated by per-message overhead.
    ///
    /// This is the mechanism behind the paper's observation that sparse,
    /// unchunked SendRecv calls underutilize PCIe bandwidth.
    pub fn effective_bw_gbps(&self, message_bytes: f64) -> f64 {
        if message_bytes <= 0.0 {
            return 0.0;
        }
        message_bytes / self.message_time_s(message_bytes) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pcie_accounting() {
        assert!(LinkClass::Pcie.counts_as_pcie());
        assert!(LinkClass::Nic.counts_as_pcie());
        assert!(!LinkClass::NvLink.counts_as_pcie());
        assert!(!LinkClass::XgmiPackage.counts_as_pcie());
    }

    #[test]
    fn nic_is_inter_node_only() {
        assert!(!LinkClass::Nic.is_intra_node());
        assert!(LinkClass::Pcie.is_intra_node());
        assert!(LinkClass::NvLink.is_intra_node());
    }

    #[test]
    fn table3_inter_node_is_100gbps() {
        let nic = LinkSpec::ib_100g();
        assert_eq!(nic.bw_gbps, 12.5);
        assert_eq!(LinkSpec::ib_gbps(100.0).bw_gbps, 12.5);
        assert_eq!(LinkSpec::ib_gbps(800.0).bw_gbps, 100.0);
    }

    #[test]
    fn small_messages_underutilize_bandwidth() {
        let pcie = LinkSpec::pcie_gen5();
        let small = pcie.effective_bw_gbps(64.0 * 1024.0); // 64 KiB
        let large = pcie.effective_bw_gbps(256.0 * 1024.0 * 1024.0); // 256 MiB
        assert!(
            small < 0.25 * pcie.bw_gbps,
            "small msg eff bw = {small} GB/s"
        );
        assert!(
            large > 0.95 * pcie.bw_gbps,
            "large msg eff bw = {large} GB/s"
        );
    }

    #[test]
    fn effective_bw_is_monotone_in_message_size() {
        let link = LinkSpec::nvlink4();
        let mut prev = 0.0;
        for exp in 10..32 {
            let bw = link.effective_bw_gbps((1u64 << exp) as f64);
            assert!(bw >= prev);
            prev = bw;
        }
    }

    #[test]
    fn zero_bytes_has_zero_effective_bw() {
        assert_eq!(LinkSpec::nvlink4().effective_bw_gbps(0.0), 0.0);
    }

    #[test]
    fn degraded_link_scales_bandwidth_only() {
        let nic = LinkSpec::ib_100g();
        let half = nic.degraded(0.5);
        assert_eq!(half.bw_gbps, nic.bw_gbps * 0.5);
        assert_eq!(half.latency_us, nic.latency_us);
        assert_eq!(half.per_message_us, nic.per_message_us);
        assert_eq!(half.class, nic.class);
        assert_eq!(nic.degraded(1.0), nic);
    }

    #[test]
    #[should_panic(expected = "degradation factor")]
    fn degraded_rejects_zero_factor() {
        LinkSpec::nvlink4().degraded(0.0);
    }

    #[test]
    fn message_time_includes_latency() {
        let link = LinkSpec::new(LinkClass::NvLink, 100.0, 10.0, 0.0);
        // 0-byte message still pays 10us.
        assert!((link.message_time_s(0.0) - 10e-6).abs() < 1e-12);
    }
}
