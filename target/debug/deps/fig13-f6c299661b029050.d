/root/repo/target/debug/deps/fig13-f6c299661b029050.d: crates/bench/benches/fig13.rs

/root/repo/target/debug/deps/fig13-f6c299661b029050: crates/bench/benches/fig13.rs

crates/bench/benches/fig13.rs:
