//! Combined per-GPU thermal/power/frequency state stepped by the simulator.

use serde::{Deserialize, Serialize};

use charllm_hw::GpuSpec;

use crate::governor::{DvfsGovernor, GovernorConfig, ThrottleReason};
use crate::power::PowerModel;
use crate::rc::ThermalSpec;
use crate::variability::GpuVariability;

/// One telemetry sample produced by a state step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSample {
    /// Board power, watts.
    pub power_w: f64,
    /// Junction temperature, °C.
    pub temp_c: f64,
    /// Core clock, MHz.
    pub freq_mhz: f64,
    /// Whether (and why) the clock was held below boost this period.
    pub throttled: bool,
    /// Whether the cause was thermal.
    pub thermally_throttled: bool,
}

/// The live thermal/power/DVFS state of one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuThermal {
    spec: GpuSpec,
    thermal: ThermalSpec,
    power_model: PowerModel,
    governor: DvfsGovernor,
    variability: GpuVariability,
    temp_c: f64,
    power_w: f64,
    energy_j: f64,
}

impl GpuThermal {
    /// Initialize at idle in equilibrium with the given inlet temperature.
    pub fn new(
        spec: GpuSpec,
        thermal: ThermalSpec,
        governor_cfg: GovernorConfig,
        variability: GpuVariability,
        inlet_c: f64,
    ) -> Self {
        let power_model = PowerModel::for_spec(&spec);
        let idle_power = power_model.power_w(0.0, 1.0, variability.power_efficiency);
        let temp_c = thermal.steady_state_c(idle_power, inlet_c, variability.cooling);
        GpuThermal {
            governor: DvfsGovernor::new(&spec, governor_cfg),
            power_model,
            thermal,
            variability,
            temp_c,
            power_w: idle_power,
            energy_j: 0.0,
            spec,
        }
    }

    /// Current clock frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.governor.freq_mhz()
    }

    /// Current clock as a fraction of boost (the compute-rate multiplier).
    pub fn freq_ratio(&self) -> f64 {
        self.governor.freq_mhz() / self.spec.boost_clock_mhz
    }

    /// Current junction temperature, °C.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Current board power, watts.
    pub fn power_w(&self) -> f64 {
        self.power_w
    }

    /// Total energy consumed so far, joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Fraction of busy periods spent throttled.
    pub fn throttle_ratio(&self) -> f64 {
        self.governor.throttle_ratio()
    }

    /// Fraction of busy periods spent thermally throttled.
    pub fn thermal_throttle_ratio(&self) -> f64 {
        self.governor.thermal_throttle_ratio()
    }

    /// The device spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Advance one control period of `dt_s` seconds with the given kernel
    /// `activity` (0..1) and effective inlet temperature.
    pub fn step(&mut self, activity: f64, inlet_c: f64, dt_s: f64) -> ThermalSample {
        let eff = self.variability.power_efficiency;
        let reason =
            self.governor
                .update(&self.spec, &self.power_model, self.temp_c, activity, eff);
        let freq_ratio = self.freq_ratio();
        self.power_w = self.power_model.power_w(activity, freq_ratio, eff);
        self.temp_c = self.thermal.step(
            self.temp_c,
            self.power_w,
            inlet_c,
            self.variability.cooling,
            dt_s,
        );
        self.energy_j += self.power_w * dt_s;
        ThermalSample {
            power_w: self.power_w,
            temp_c: self.temp_c,
            freq_mhz: self.governor.freq_mhz(),
            throttled: matches!(reason, ThrottleReason::Thermal | ThrottleReason::Power),
            thermally_throttled: reason == ThrottleReason::Thermal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::{GpuId, GpuModel};

    fn gpu(inlet: f64, variability: GpuVariability) -> GpuThermal {
        let spec = GpuModel::H200.spec();
        let cfg = GovernorConfig::for_spec(&spec);
        GpuThermal::new(
            spec,
            ThermalSpec::for_model(GpuModel::H200),
            cfg,
            variability,
            inlet,
        )
    }

    #[test]
    fn starts_at_idle_equilibrium() {
        let g = gpu(26.0, GpuVariability::nominal());
        assert!(g.temp_c() < 40.0);
        assert!(g.power_w() < 120.0);
        assert_eq!(g.energy_j(), 0.0);
    }

    #[test]
    fn sustained_gemm_load_heats_up_and_draws_power() {
        let mut g = gpu(26.0, GpuVariability::nominal());
        for _ in 0..600 {
            g.step(1.0, 26.0, 0.1);
        }
        assert!(g.temp_c() > 60.0, "temp = {}", g.temp_c());
        assert!(g.power_w() > 600.0, "power = {}", g.power_w());
        assert!(g.energy_j() > 0.0);
    }

    #[test]
    fn preheated_rear_gpu_throttles_while_front_does_not() {
        // The §6 thermal-imbalance mechanism end-to-end: same workload,
        // different inlet.
        let mut front = gpu(26.0, GpuVariability::nominal());
        let mut rear = gpu(42.0, GpuVariability::nominal());
        for _ in 0..3000 {
            front.step(1.0, 26.0, 0.1);
            rear.step(1.0, 42.0, 0.1);
        }
        assert!(rear.temp_c() > front.temp_c() + 8.0);
        assert!(
            rear.thermal_throttle_ratio() > 0.05,
            "rear ratio = {}",
            rear.thermal_throttle_ratio()
        );
        assert!(
            front.thermal_throttle_ratio() < 0.02,
            "front ratio = {}",
            front.thermal_throttle_ratio()
        );
        assert!(rear.freq_mhz() < front.freq_mhz());
    }

    #[test]
    fn throttled_gpu_recovers_when_idle() {
        let mut g = gpu(45.0, GpuVariability::nominal());
        for _ in 0..2000 {
            g.step(1.0, 45.0, 0.1);
        }
        let hot = g.temp_c();
        for _ in 0..2000 {
            g.step(0.0, 26.0, 0.1);
        }
        assert!(g.temp_c() < hot - 20.0);
        assert!(g.power_w() < 150.0);
    }

    #[test]
    fn energy_integrates_power() {
        let mut g = gpu(26.0, GpuVariability::nominal());
        let s = g.step(0.5, 26.0, 2.0);
        assert!((g.energy_j() - s.power_w * 2.0).abs() < 1e-9);
    }

    #[test]
    fn variability_shifts_thermal_outcome() {
        let hot_silicon = GpuVariability {
            power_efficiency: 1.03,
            cooling: 1.04,
        };
        let mut bad = gpu(26.0, hot_silicon);
        let mut good = gpu(26.0, GpuVariability::nominal());
        for _ in 0..1200 {
            bad.step(1.0, 26.0, 0.1);
            good.step(1.0, 26.0, 0.1);
        }
        assert!(bad.temp_c() > good.temp_c());
    }

    #[test]
    fn variability_determinism_via_gpu_id() {
        let v1 = GpuVariability::for_gpu(GpuId(3), 9);
        let v2 = GpuVariability::for_gpu(GpuId(3), 9);
        let mut a = gpu(26.0, v1);
        let mut b = gpu(26.0, v2);
        for _ in 0..100 {
            let sa = a.step(0.9, 26.0, 0.1);
            let sb = b.step(0.9, 26.0, 0.1);
            assert_eq!(sa, sb);
        }
    }
}
