/root/repo/target/debug/deps/fig06-38685fe93cf44bb6.d: crates/bench/benches/fig06.rs Cargo.toml

/root/repo/target/debug/deps/libfig06-38685fe93cf44bb6.rmeta: crates/bench/benches/fig06.rs Cargo.toml

crates/bench/benches/fig06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
