//! Board power as a function of activity and clock frequency.
//!
//! `P = P_idle + activity · (P_max − P_idle) · (f/f_boost)^α` with α ≈ 2.4
//! (dynamic power scales with `V²·f` and voltage tracks frequency). The
//! *activity* input is a utilization weight in `[0, 1]` computed by the
//! simulator from the mix of running kernels: dense GEMMs drive the GPU near
//! TDP, attention and memory-bound kernels less, communication kernels far
//! less — which is why the paper's TP-heavy (communication-dominated)
//! configurations draw less power than PP-heavy ones (§4.2, Fig. 4).

use serde::{Deserialize, Serialize};

use charllm_hw::GpuSpec;

/// Activity weight of a dense GEMM kernel (drives the GPU near TDP).
pub const ACTIVITY_GEMM: f64 = 1.0;
/// Activity weight of attention kernels (memory-bound portions included).
pub const ACTIVITY_ATTENTION: f64 = 0.82;
/// Activity weight of optimizer/elementwise kernels.
pub const ACTIVITY_ELEMENTWISE: f64 = 0.55;
/// Activity weight of communication kernels (copy engines + SMs for NCCL).
pub const ACTIVITY_COMM: f64 = 0.38;

/// Activity- and frequency-dependent power model for one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle board power, watts.
    pub idle_w: f64,
    /// Maximum dynamic power (`TDP − idle`) at boost clock and activity 1.
    pub max_dynamic_w: f64,
    /// Frequency exponent α.
    pub freq_exponent: f64,
}

impl PowerModel {
    /// Build from a device spec.
    pub fn for_spec(spec: &GpuSpec) -> Self {
        PowerModel {
            idle_w: spec.idle_w,
            max_dynamic_w: spec.tdp_w - spec.idle_w,
            freq_exponent: 2.4,
        }
    }

    /// Instantaneous board power.
    ///
    /// `activity` is clamped to `[0, 1]`; `freq_ratio` is `f/f_boost`;
    /// `efficiency` is the per-GPU silicon variability multiplier on
    /// dynamic power (1.0 nominal).
    pub fn power_w(&self, activity: f64, freq_ratio: f64, efficiency: f64) -> f64 {
        let a = activity.clamp(0.0, 1.0);
        let fr = freq_ratio.max(0.0);
        self.idle_w + a * self.max_dynamic_w * fr.powf(self.freq_exponent) * efficiency
    }

    /// The freq ratio at which an activity level exactly meets a power cap
    /// (used by the governor for power capping). Returns 1.0 when the cap is
    /// never hit.
    pub fn freq_ratio_for_cap(&self, activity: f64, cap_w: f64, efficiency: f64) -> f64 {
        let a = activity.clamp(0.0, 1.0);
        if a <= 0.0 {
            return 1.0;
        }
        let dynamic_budget = (cap_w - self.idle_w).max(0.0);
        let needed = dynamic_budget / (a * self.max_dynamic_w * efficiency);
        needed.powf(1.0 / self.freq_exponent).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::GpuModel;

    fn model() -> PowerModel {
        PowerModel::for_spec(&GpuModel::H200.spec())
    }

    #[test]
    fn idle_at_zero_activity() {
        let m = model();
        assert_eq!(m.power_w(0.0, 1.0, 1.0), m.idle_w);
    }

    #[test]
    fn full_gemm_at_boost_hits_tdp() {
        let m = model();
        let spec = GpuModel::H200.spec();
        assert!((m.power_w(ACTIVITY_GEMM, 1.0, 1.0) - spec.tdp_w).abs() < 1e-6);
    }

    #[test]
    fn comm_kernels_draw_much_less_than_gemm() {
        let m = model();
        let comm = m.power_w(ACTIVITY_COMM, 1.0, 1.0);
        let gemm = m.power_w(ACTIVITY_GEMM, 1.0, 1.0);
        assert!(comm < 0.6 * gemm, "comm={comm} gemm={gemm}");
    }

    #[test]
    fn throttling_reduces_power_superlinearly() {
        let m = model();
        let full = m.power_w(1.0, 1.0, 1.0) - m.idle_w;
        let half = m.power_w(1.0, 0.5, 1.0) - m.idle_w;
        assert!(
            half < 0.25 * full,
            "2.4 exponent: half-clock < quarter dynamic power"
        );
    }

    #[test]
    fn activity_clamped() {
        let m = model();
        assert_eq!(m.power_w(2.0, 1.0, 1.0), m.power_w(1.0, 1.0, 1.0));
        assert_eq!(m.power_w(-1.0, 1.0, 1.0), m.idle_w);
    }

    #[test]
    fn cap_ratio_inverts_power() {
        let m = model();
        let cap = 500.0;
        let ratio = m.freq_ratio_for_cap(1.0, cap, 1.0);
        let p = m.power_w(1.0, ratio, 1.0);
        assert!((p - cap).abs() < 1.0, "power at cap ratio = {p}");
    }

    #[test]
    fn cap_ratio_is_one_when_unconstrained() {
        let m = model();
        assert_eq!(m.freq_ratio_for_cap(0.3, 700.0, 1.0), 1.0);
        assert_eq!(m.freq_ratio_for_cap(0.0, 100.0, 1.0), 1.0);
    }

    #[test]
    fn inefficient_silicon_draws_more() {
        let m = model();
        assert!(m.power_w(0.8, 1.0, 1.05) > m.power_w(0.8, 1.0, 1.0));
    }
}
