//! Figure 15: per-rank breakdown of kernel latency for GPT3-175B with
//! microbatch 1 (top) vs 4 (bottom) — larger microbatches even out rank
//! skew but raise communication time in PP-heavy configurations.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, save_json, try_run};
use charllm_trace::KernelClass;

fn rank_skew(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    if mean > 0.0 {
        (max - min) / mean
    } else {
        0.0
    }
}

fn main() {
    banner(
        "Figure 15",
        "per-rank kernel latency, GPT3-175B, microbatch 1 vs 4",
    );
    let cluster = hgx_h200_cluster();
    let base = bench_job(gpt3_175b()).with_recompute(true);
    let mut rows = Vec::new();
    for label in ["TP8-PP4", "TP2-PP16", "TP8-FSDP4"] {
        let Ok(spec) = ParallelismSpec::parse(label, cluster.num_gpus()) else {
            continue;
        };
        println!("\n--- {label} ---");
        println!(
            "{:<4} {:>10} {:>10} {:>12} {:>11} {:>10}",
            "mb", "compute s", "comm s", "comm skew", "step s", "tok/s"
        );
        let mut mb_steps = Vec::new();
        for mb in [1usize, 4] {
            let job = base.clone().with_microbatch(mb);
            if job.validate_for_dp(spec.dp).is_err() {
                continue;
            }
            let Some(r) = try_run(&cluster, &job, spec) else {
                continue;
            };
            let comm: Vec<f64> = r.sim.kernel_time.iter().map(|k| k.comm_total()).collect();
            let k = r.mean_kernel_time();
            println!(
                "{:<4} {:>10.2} {:>10.2} {:>11.1}% {:>11.2} {:>10.0}",
                mb,
                k.compute_total(),
                k.comm_total(),
                rank_skew(&comm) * 100.0,
                r.step_time_s,
                r.tokens_per_s
            );
            mb_steps.push((mb, r.step_time_s));
            rows.push(serde_json::json!({
                "parallelism": label,
                "microbatch": mb,
                "compute_s": k.compute_total(),
                "comm_s": k.comm_total(),
                "sendrecv_s": k.get(KernelClass::SendRecv),
                "comm_skew": rank_skew(&comm),
                "step_s": r.step_time_s,
            }));
        }
        if let [(_, s1), (_, s4)] = mb_steps[..] {
            println!("mb1 -> mb4 step-time speedup: {:.2}x", s1 / s4);
        }
    }
    save_json("fig15", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: at mb1 communication dominates TP-heavy setups with\n\
         heavy rank skew; mb4 evens out execution and speeds TP8-FSDP by >3x,\n\
         while PP-heavy configs see communication costs rise again."
    );
}
