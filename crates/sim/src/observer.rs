//! Observer hooks: zero-cost-when-off instrumentation of the engines.
//!
//! Both [`crate::Simulator`] and [`crate::reference::ReferenceSimulator`]
//! are generic over a [`SimObserver`] and invoke its hooks at every
//! scheduling event. The default [`NoopObserver`] has empty hook bodies, so
//! the unobserved engine monomorphizes to exactly the uninstrumented code —
//! results are byte-identical with any observer attached (enforced by the
//! golden suite) and the no-op overhead is guarded by a bench test.
//!
//! [`charllm_telemetry::SpanRecorder`] implements the trait here (the trait
//! lives downstream of the recorder), turning hook calls into the span
//! streams consumed by phase attribution and Perfetto export.

use charllm_telemetry::{SpanKind, SpanRecorder};
use charllm_trace::task::CollectiveId;
use charllm_trace::{ComputeKind, KernelClass};

/// What a rank-track span represents, from the engine's point of view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskKind {
    /// A compute kernel is running.
    Compute(ComputeKind),
    /// The rank blocked on a collective (wait ends when it completes).
    CollWait {
        /// The collective being waited on.
        coll: CollectiveId,
        /// Its reporting bucket.
        class: KernelClass,
    },
}

/// Hooks invoked by both engines at scheduling events.
///
/// All times are seconds of simulated time. Every hook has an empty default
/// body, so implementors opt into exactly the streams they need. Hooks must
/// not influence simulation state — the engines guarantee byte-identical
/// [`crate::SimResult`]s whatever the observer does.
pub trait SimObserver {
    /// A rank starts a task (compute kernel or blocking collective wait).
    /// Waits on already-complete collectives produce no task.
    fn task_start(&mut self, rank: usize, gpu: u32, iteration: u32, kind: TaskKind, t_s: f64) {
        let _ = (rank, gpu, iteration, kind, t_s);
    }

    /// The rank's open task ends (compute finished, or the awaited
    /// collective completed).
    fn task_end(&mut self, rank: usize, t_s: f64) {
        let _ = (rank, t_s);
    }

    /// A network flow of collective `coll` launches between two GPUs.
    /// `flow` is a dense engine-assigned id, unique among *open* flows and
    /// recycled after retirement — recorders can index a flat table by it
    /// instead of hashing the `(coll, iteration, src, dst)` identity.
    fn flow_launch(
        &mut self,
        flow: u32,
        coll: u32,
        iteration: u32,
        src_gpu: u32,
        dst_gpu: u32,
        t_s: f64,
    ) {
        let _ = (flow, coll, iteration, src_gpu, dst_gpu, t_s);
    }

    /// A previously launched flow retires (all its work moved). `flow`
    /// matches the id passed to the corresponding
    /// [`SimObserver::flow_launch`].
    fn flow_retire(&mut self, flow: u32, t_s: f64) {
        let _ = (flow, t_s);
    }

    /// A collective instance completes (all flows retired, waiters woken).
    fn collective_complete(&mut self, coll: u32, iteration: u32, t_s: f64) {
        let _ = (coll, iteration, t_s);
    }

    /// One thermal-control window closed for one GPU. `power_w × period_s`
    /// is exactly the energy the engine accrues for `[t_s - period_s, t_s]`;
    /// `measuring` mirrors the warmup gate on measured energy.
    fn sample_tick(&mut self, gpu: u32, t_s: f64, power_w: f64, period_s: f64, measuring: bool) {
        let _ = (gpu, t_s, power_w, period_s, measuring);
    }

    /// An injected fault becomes active. `fault` is the event's index in
    /// the `FaultPlan`, `label` its kind (e.g. `gpu-fail-stop`), `target`
    /// the affected GPU/link/rank index (`u32::MAX` = cluster-wide). For a
    /// fail-stop the window spans the whole recovery outage.
    fn fault_begin(&mut self, fault: u32, label: &'static str, target: u32, t_s: f64) {
        let _ = (fault, label, target, t_s);
    }

    /// A previously begun fault recovers.
    fn fault_end(&mut self, fault: u32, t_s: f64) {
        let _ = (fault, t_s);
    }
}

/// The default do-nothing observer: every hook inlines to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

impl SimObserver for SpanRecorder {
    fn task_start(&mut self, rank: usize, gpu: u32, iteration: u32, kind: TaskKind, t_s: f64) {
        let kind = match kind {
            TaskKind::Compute(kind) => SpanKind::Compute { kind },
            TaskKind::CollWait { coll, class } => SpanKind::Collective {
                coll: coll.0,
                class,
            },
        };
        self.begin_task(rank, gpu, iteration, kind, t_s);
    }

    fn task_end(&mut self, rank: usize, t_s: f64) {
        self.end_task(rank, t_s);
    }

    fn flow_launch(
        &mut self,
        flow: u32,
        coll: u32,
        iteration: u32,
        src_gpu: u32,
        dst_gpu: u32,
        t_s: f64,
    ) {
        SpanRecorder::flow_launch(self, flow, coll, iteration, src_gpu, dst_gpu, t_s);
    }

    fn flow_retire(&mut self, flow: u32, t_s: f64) {
        SpanRecorder::flow_retire(self, flow, t_s);
    }

    fn collective_complete(&mut self, coll: u32, iteration: u32, t_s: f64) {
        SpanRecorder::collective_complete(self, coll, iteration, t_s);
    }

    fn sample_tick(&mut self, gpu: u32, t_s: f64, power_w: f64, period_s: f64, measuring: bool) {
        self.power_tick(gpu, t_s, power_w, period_s, measuring);
    }

    fn fault_begin(&mut self, fault: u32, label: &'static str, target: u32, t_s: f64) {
        SpanRecorder::fault_begin(self, fault, label, target, t_s);
    }

    fn fault_end(&mut self, fault: u32, t_s: f64) {
        SpanRecorder::fault_end(self, fault, t_s);
    }
}
