/root/repo/target/release/deps/charllm_bench-4c7da4567e61cc80.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcharllm_bench-4c7da4567e61cc80.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcharllm_bench-4c7da4567e61cc80.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
