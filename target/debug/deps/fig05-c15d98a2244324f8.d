/root/repo/target/debug/deps/fig05-c15d98a2244324f8.d: crates/bench/benches/fig05.rs

/root/repo/target/debug/deps/fig05-c15d98a2244324f8: crates/bench/benches/fig05.rs

crates/bench/benches/fig05.rs:
