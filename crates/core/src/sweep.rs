//! Configuration sweeps: run many experiments and collect reports.
//!
//! A [`Sweep`] enumerates the cartesian product of parallelism specs ×
//! job variants × microbatch sizes and simulates every point. Points are
//! independent, so [`Sweep::run`] fans them across an [`Executor`] worker
//! pool ([`Sweep::workers`] controls the width; `workers(1)` is exactly
//! the serial path) and returns results in enumeration order regardless
//! of which worker finished first.
//!
//! Infeasible points are expected when sweeping broadly; they surface as
//! structured [`SweepOutcome::Skipped`] values from
//! [`Sweep::run_outcomes`] (and through the [`Sweep::on_progress`]
//! callback) rather than as stderr noise.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use charllm_hw::Cluster;
use charllm_models::TrainJob;
use charllm_parallel::ParallelismSpec;
use charllm_sim::{FaultPlan, SimConfig};
use charllm_telemetry::metrics::{Counter, Gauge, MetricsHub, MetricsSnapshot};
use serde_json::Value;

use crate::cache::SimCache;
use crate::error::CoreError;
use crate::executor::Executor;
use crate::experiment::Experiment;
use crate::report::RunReport;
use crate::stream::{ProgressEvent, ProgressStream};

/// Progress callback: called once per completed point, from whichever
/// worker thread finished it.
type ProgressFn = dyn Fn(&SweepProgress<'_>) + Send + Sync;

/// One point of a sweep's cartesian grid, in enumeration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// Position in the sweep's enumeration order (0-based).
    pub index: usize,
    /// The parallelism configuration at this point.
    pub spec: ParallelismSpec,
    /// The optimization label of the job variant (`Base`, `cc`, ...).
    pub optimization: String,
    /// The microbatch size at this point.
    pub microbatch: usize,
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} mb{}",
            self.spec.label(),
            self.optimization,
            self.microbatch
        )
    }
}

/// The structured result of one sweep point.
#[derive(Debug)]
pub enum SweepOutcome {
    /// The point simulated successfully.
    Completed {
        /// Which point this is.
        point: SweepPoint,
        /// The full run report.
        report: Box<RunReport>,
    },
    /// The point failed and the sweep is in skip mode (the default):
    /// infeasible geometry is expected when sweeping broadly.
    Skipped {
        /// Which point this is.
        point: SweepPoint,
        /// Why the point was skipped (the rendered error).
        reason: String,
    },
    /// The point failed and the sweep is strict: [`Sweep::run`] turns the
    /// first `Failed` outcome (in point order) into its error.
    Failed {
        /// Which point this is.
        point: SweepPoint,
        /// The underlying error.
        error: CoreError,
    },
}

impl SweepOutcome {
    /// The sweep point this outcome belongs to.
    pub fn point(&self) -> &SweepPoint {
        match self {
            SweepOutcome::Completed { point, .. }
            | SweepOutcome::Skipped { point, .. }
            | SweepOutcome::Failed { point, .. } => point,
        }
    }

    /// The report, if the point completed.
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            SweepOutcome::Completed { report, .. } => Some(report),
            _ => None,
        }
    }

    /// Whether the point was skipped.
    pub fn is_skipped(&self) -> bool {
        matches!(self, SweepOutcome::Skipped { .. })
    }
}

/// A progress notification: one point finished.
#[derive(Debug)]
pub struct SweepProgress<'a> {
    /// Points finished so far, including this one. Counts completion
    /// order, which under a parallel executor differs from point order.
    pub completed: usize,
    /// Total points in the sweep.
    pub total: usize,
    /// The finished point's outcome.
    pub outcome: &'a SweepOutcome,
}

/// Sweep-level metric handles, registered on the hub's shard 0.
struct SweepCounters {
    completed: Counter,
    skipped: Counter,
    failed: Counter,
    /// Per-step energy of completed points, quantized to exact integer
    /// millijoules (`round(energy_per_step_j * 1e3)`) so the counter
    /// reconciles bit-for-bit with the summed per-point reports.
    energy_mj: Counter,
    points_total: Gauge,
    elapsed_s: Gauge,
    eta_s: Gauge,
}

impl SweepCounters {
    fn new(hub: &Arc<MetricsHub>) -> Self {
        let s = hub.shard(0);
        SweepCounters {
            completed: s.counter("sweep_points_completed_total", &[]),
            skipped: s.counter("sweep_points_skipped_total", &[]),
            failed: s.counter("sweep_points_failed_total", &[]),
            energy_mj: s.counter("sweep_energy_per_step_mj_total", &[]),
            points_total: s.gauge("sweep_points_total", &[]),
            elapsed_s: s.gauge("sweep_elapsed_s", &[]),
            eta_s: s.gauge("sweep_eta_s", &[]),
        }
    }
}

/// A finished point's summary, parked until every earlier point has been
/// emitted to the stream.
struct PendingPoint {
    outcome: &'static str,
    label: String,
    reason: String,
    step_time_s: f64,
    tokens_per_s: f64,
    energy_per_step_j: f64,
}

impl PendingPoint {
    fn of(outcome: &SweepOutcome) -> Self {
        match outcome {
            SweepOutcome::Completed { point, report } => PendingPoint {
                outcome: "completed",
                label: point.to_string(),
                reason: String::new(),
                step_time_s: report.step_time_s,
                tokens_per_s: report.tokens_per_s,
                energy_per_step_j: report.energy_per_step_j,
            },
            SweepOutcome::Skipped { point, reason } => PendingPoint {
                outcome: "skipped",
                label: point.to_string(),
                reason: reason.clone(),
                step_time_s: 0.0,
                tokens_per_s: 0.0,
                energy_per_step_j: 0.0,
            },
            SweepOutcome::Failed { point, error } => PendingPoint {
                outcome: "failed",
                label: point.to_string(),
                reason: error.to_string(),
                step_time_s: 0.0,
                tokens_per_s: 0.0,
                energy_per_step_j: 0.0,
            },
        }
    }
}

/// Shared finish-side state: outcome tallies, the progress-callback lock,
/// and the stream's in-order emission buffer.
struct EmitState {
    finished: usize,
    completed: usize,
    skipped: usize,
    failed: usize,
    seq: u64,
    next_emit: usize,
    pending: BTreeMap<usize, PendingPoint>,
    last_snapshot: Option<MetricsSnapshot>,
}

/// A cartesian sweep over parallelism specs, optimization variants and
/// microbatch sizes for one model on one cluster.
#[derive(Clone)]
pub struct Sweep {
    cluster: Arc<Cluster>,
    base_job: TrainJob,
    specs: Vec<ParallelismSpec>,
    jobs_per_spec: Vec<TrainJob>,
    microbatches: Vec<usize>,
    sim: SimConfig,
    skip_failures: bool,
    workers: usize,
    progress: Option<Arc<ProgressFn>>,
    cache: Option<Arc<SimCache>>,
    use_cache: bool,
    faults: Option<FaultPlan>,
    metrics: Option<Arc<MetricsHub>>,
    stream: Option<Arc<ProgressStream>>,
    self_profile: bool,
    cancel: Option<Arc<AtomicBool>>,
}

impl fmt::Debug for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sweep")
            .field("cluster", &self.cluster.name())
            .field("base_job", &self.base_job)
            .field("specs", &self.specs)
            .field("jobs_per_spec", &self.jobs_per_spec.len())
            .field("microbatches", &self.microbatches)
            .field("sim", &self.sim)
            .field("skip_failures", &self.skip_failures)
            .field("workers", &self.workers)
            .field("progress", &self.progress.is_some())
            .field("cache", &self.use_cache)
            .field("faults", &self.faults.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("stream", &self.stream.is_some())
            .field("self_profile", &self.self_profile)
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

impl Sweep {
    /// A sweep of `specs` for one job on a cluster.
    pub fn new(
        cluster: impl Into<Arc<Cluster>>,
        job: TrainJob,
        specs: Vec<ParallelismSpec>,
    ) -> Self {
        Sweep {
            cluster: cluster.into(),
            jobs_per_spec: vec![job.clone()],
            base_job: job,
            specs,
            microbatches: vec![1],
            sim: SimConfig::default(),
            skip_failures: true,
            workers: 0,
            progress: None,
            cache: None,
            use_cache: true,
            faults: None,
            metrics: None,
            stream: None,
            self_profile: false,
            cancel: None,
        }
    }

    /// Replace the job variants (e.g. the Base/cc/act/cc+act set).
    pub fn with_job_variants(mut self, jobs: Vec<TrainJob>) -> Self {
        self.jobs_per_spec = jobs;
        self
    }

    /// Microbatch sizes to sweep.
    pub fn with_microbatches(mut self, microbatches: Vec<usize>) -> Self {
        self.microbatches = microbatches;
        self
    }

    /// Simulator configuration for every run.
    pub fn with_sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Fail the whole sweep on the first error instead of skipping
    /// infeasible points.
    pub fn strict(mut self) -> Self {
        self.skip_failures = false;
        self
    }

    /// Worker threads for the sweep: `0` (the default) means one per
    /// available core, `1` runs every point serially on the calling
    /// thread, `n > 1` bounds the pool at `n`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Share an externally owned [`SimCache`] instead of the per-sweep one,
    /// e.g. to carry memoized lowerings and collective plans across several
    /// sweeps or ablations over the same workloads. Read aggregate hit/miss
    /// counters from the cache afterwards via [`SimCache::stats`].
    pub fn with_cache(mut self, cache: Arc<SimCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Inject the same [`FaultPlan`] into every point of the sweep (e.g. an
    /// MTBF scenario evaluated across parallelism configurations). The plan
    /// participates in the memoization key, so repeated points with the
    /// same plan still hit a shared cache.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Disable cross-point memoization: every point lowers its trace and
    /// builds its collective plans from scratch. On by default — results
    /// are byte-identical either way, so this exists for benchmarking the
    /// cache itself and for memory-constrained giant sweeps.
    pub fn no_cache(mut self) -> Self {
        self.cache = None;
        self.use_cache = false;
        self
    }

    /// Observe each point as it finishes.
    ///
    /// The contract, identical for every worker count (pinned by test):
    /// the callback runs on whichever worker thread completed the point
    /// (hence `Send + Sync`), once per point, in **completion order** —
    /// which under `workers > 1` differs from point order; consume
    /// [`Sweep::stream`] instead if you need enumeration order.
    /// Invocations are serialized under an internal lock, and
    /// [`SweepProgress::completed`] is strictly increasing `1..=total`
    /// across them (completed counts every outcome:
    /// [`SweepOutcome::Skipped`] and [`SweepOutcome::Failed`] points
    /// report progress too). `completed`/`total` are therefore directly
    /// usable as a progress meter.
    pub fn on_progress(
        mut self,
        callback: impl Fn(&SweepProgress<'_>) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Arc::new(callback));
        self
    }

    /// Publish live metrics to `hub` while the sweep runs: sweep-level
    /// reconciliation counters (`sweep_points_{completed,skipped,failed}_total`,
    /// `sweep_energy_per_step_mj_total` in exact millijoules), live
    /// `sweep_elapsed_s`/`sweep_eta_s` gauges, per-worker
    /// `sweep_worker_busy_ms_total`/`sweep_worker_utilization` series, the
    /// shared cache's `cache_*` series, and each in-flight experiment's
    /// engine gauges (`sim_*`, on the shard matching its pool worker). A
    /// disabled hub costs nothing and results are byte-identical either
    /// way.
    pub fn with_metrics(mut self, hub: Arc<MetricsHub>) -> Self {
        self.metrics = Some(hub);
        self
    }

    /// Stream one structured JSONL [`ProgressEvent`] per point (plus a
    /// terminal `sweep_end` event) into `stream`, in enumeration order:
    /// out-of-order completions from parallel workers are buffered until
    /// every earlier point has been emitted. With [`Sweep::with_metrics`]
    /// attached, each event also carries the hub's exact snapshot delta.
    pub fn stream(mut self, stream: Arc<ProgressStream>) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Record host-side per-stage wall times on every point's report
    /// ([`RunReport::stages`]); off by default so reports stay comparable
    /// across runs.
    pub fn self_profile(mut self, on: bool) -> Self {
        self.self_profile = on;
        self
    }

    /// Cooperative cancellation: once `flag` becomes true, points that
    /// have not started yet finish as [`SweepOutcome::Skipped`] with
    /// reason `"canceled"` (in-flight points run to completion — the
    /// engine has no preemption point). Canceled points still flow
    /// through the progress callback and the stream, so a consumer sees
    /// every index plus the terminal `sweep_end` event and can tell a
    /// canceled sweep from a truncated stream.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// The cartesian grid in enumeration order, with the concrete job for
    /// each point.
    fn grid(&self) -> Vec<(SweepPoint, TrainJob)> {
        let mut points = Vec::new();
        for spec in &self.specs {
            for job in &self.jobs_per_spec {
                for &mb in &self.microbatches {
                    let job = job.clone().with_microbatch(mb);
                    let point = SweepPoint {
                        index: points.len(),
                        spec: *spec,
                        optimization: job.optim.label(),
                        microbatch: mb,
                    };
                    points.push((point, job));
                }
            }
        }
        points
    }

    /// The points this sweep will execute, in order.
    pub fn points(&self) -> Vec<SweepPoint> {
        self.grid().into_iter().map(|(point, _)| point).collect()
    }

    /// Execute every point and return one structured [`SweepOutcome`] per
    /// point, in enumeration order.
    ///
    /// This is the observable form of the sweep: completed points carry
    /// their report, failing points carry a skip reason (default mode) or
    /// the error itself (strict mode). Nothing is printed.
    pub fn run_outcomes(&self) -> Vec<SweepOutcome> {
        let grid = self.grid();
        let total = grid.len();
        let hub = self.metrics.as_ref().filter(|h| h.enabled());
        // One cache for the whole pool: workers publish lowered traces and
        // plan sets as they build them, so points sharing a workload (or a
        // later sweep via `with_cache`) skip that work entirely.
        let cache = match (&self.cache, self.use_cache) {
            (Some(external), _) => Some(Arc::clone(external)),
            (None, true) => Some(Arc::new(match hub {
                Some(h) => SimCache::with_metrics(&h.shard(0)),
                None => SimCache::new(),
            })),
            (None, false) => None,
        };
        let counters = hub.map(SweepCounters::new);
        if let Some(c) = &counters {
            c.points_total.set(total as f64);
        }
        let executor = Executor::with_workers(self.workers);
        let pool_width = executor.workers().min(total.max(1));
        let busy_ms: Vec<AtomicU64> = (0..pool_width).map(|_| AtomicU64::new(0)).collect();
        let started = Instant::now();
        let emit = Mutex::new(EmitState {
            finished: 0,
            completed: 0,
            skipped: 0,
            failed: 0,
            seq: 0,
            next_emit: 0,
            pending: BTreeMap::new(),
            last_snapshot: None,
        });

        let outcomes = executor.run_with_worker(&grid, |worker, _, (point, job)| {
            if self
                .cancel
                .as_ref()
                .is_some_and(|f| f.load(AtomicOrdering::Relaxed))
            {
                let outcome = SweepOutcome::Skipped {
                    point: point.clone(),
                    reason: "canceled".into(),
                };
                self.note_finished(&emit, counters.as_ref(), hub, started, total, &outcome);
                return outcome;
            }
            let point_started = Instant::now();
            let mut builder = Experiment::builder()
                .cluster(Arc::clone(&self.cluster))
                .job(job.clone())
                .spec(point.spec)
                .sim_config(self.sim)
                .self_profile(self.self_profile);
            if let Some(cache) = &cache {
                builder = builder.cache(Arc::clone(cache));
            }
            if let Some(plan) = &self.faults {
                builder = builder.faults(plan.clone());
            }
            if let Some(h) = hub {
                builder = builder.metrics(h.shard(worker));
            }
            let result = builder.run();
            let outcome = match result {
                Ok(report) => SweepOutcome::Completed {
                    point: point.clone(),
                    report: Box::new(report),
                },
                Err(e) if self.skip_failures => SweepOutcome::Skipped {
                    point: point.clone(),
                    reason: e.to_string(),
                },
                Err(error) => SweepOutcome::Failed {
                    point: point.clone(),
                    error,
                },
            };
            let busy = point_started.elapsed().as_millis() as u64;
            if let Some(slot) = busy_ms.get(worker) {
                slot.fetch_add(busy, AtomicOrdering::Relaxed);
            }
            if let Some(h) = hub {
                h.shard(worker)
                    .counter(
                        "sweep_worker_busy_ms_total",
                        &[("worker", &worker.to_string())],
                    )
                    .add(busy);
            }
            self.note_finished(&emit, counters.as_ref(), hub, started, total, &outcome);
            outcome
        });

        let wall_s = started.elapsed().as_secs_f64();
        if let Some(h) = hub {
            for (w, slot) in busy_ms.iter().enumerate() {
                let busy_s = slot.load(AtomicOrdering::Relaxed) as f64 / 1e3;
                h.shard(w)
                    .gauge("sweep_worker_utilization", &[("worker", &w.to_string())])
                    .set(if wall_s > 0.0 { busy_s / wall_s } else { 0.0 });
            }
        }
        if let Some(stream) = &self.stream {
            let st = emit.lock().expect("sweep emit state poisoned");
            let snapshot = match hub {
                Some(h) => h.snapshot().to_json(),
                None => Value::Null,
            };
            stream.emit(&ProgressEvent {
                event: "sweep_end".into(),
                seq: st.seq,
                index: total,
                total,
                completed: st.completed,
                skipped: st.skipped,
                failed: st.failed,
                outcome: String::new(),
                point: String::new(),
                reason: String::new(),
                step_time_s: 0.0,
                tokens_per_s: 0.0,
                energy_per_step_j: 0.0,
                elapsed_s: wall_s,
                eta_s: 0.0,
                metrics: snapshot,
            });
        }
        outcomes
    }

    /// Finish-side bookkeeping for one point, under the emit lock: tallies,
    /// hub counters, the progress callback (completion order), and in-order
    /// stream emission (enumeration order, buffering gaps).
    fn note_finished(
        &self,
        emit: &Mutex<EmitState>,
        counters: Option<&SweepCounters>,
        hub: Option<&Arc<MetricsHub>>,
        started: Instant,
        total: usize,
        outcome: &SweepOutcome,
    ) {
        let mut st = emit.lock().expect("sweep emit state poisoned");
        st.finished += 1;
        match outcome {
            SweepOutcome::Completed { report, .. } => {
                st.completed += 1;
                if let Some(c) = counters {
                    c.completed.inc();
                    c.energy_mj
                        .add((report.energy_per_step_j * 1e3).round() as u64);
                }
            }
            SweepOutcome::Skipped { .. } => {
                st.skipped += 1;
                if let Some(c) = counters {
                    c.skipped.inc();
                }
            }
            SweepOutcome::Failed { .. } => {
                st.failed += 1;
                if let Some(c) = counters {
                    c.failed.inc();
                }
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        let eta = if st.finished > 0 {
            elapsed / st.finished as f64 * (total - st.finished) as f64
        } else {
            -1.0
        };
        if let Some(c) = counters {
            c.elapsed_s.set(elapsed);
            c.eta_s.set(eta);
        }
        if let Some(callback) = &self.progress {
            callback(&SweepProgress {
                completed: st.finished,
                total,
                outcome,
            });
        }
        let Some(stream) = &self.stream else { return };
        st.pending
            .insert(outcome.point().index, PendingPoint::of(outcome));
        loop {
            let next = st.next_emit;
            let Some(p) = st.pending.remove(&next) else {
                break;
            };
            let (delta, snapshot) = match hub {
                Some(h) => {
                    let snap = h.snapshot();
                    let delta = match &st.last_snapshot {
                        Some(last) => snap.diff(last),
                        None => snap.clone(),
                    };
                    (delta.to_json(), Some(snap))
                }
                None => (Value::Null, None),
            };
            stream.emit(&ProgressEvent {
                event: "point".into(),
                seq: st.seq,
                index: st.next_emit,
                total,
                completed: st.completed,
                skipped: st.skipped,
                failed: st.failed,
                outcome: p.outcome.into(),
                point: p.label,
                reason: p.reason,
                step_time_s: p.step_time_s,
                tokens_per_s: p.tokens_per_s,
                energy_per_step_j: p.energy_per_step_j,
                elapsed_s: started.elapsed().as_secs_f64(),
                eta_s: eta,
                metrics: delta,
            });
            st.last_snapshot = snapshot;
            st.seq += 1;
            st.next_emit += 1;
        }
    }

    /// Execute every point of the sweep and collect the completed reports
    /// in enumeration order.
    ///
    /// # Errors
    ///
    /// In strict mode, the failure at the earliest point (in enumeration
    /// order, independent of worker scheduling) aborts the sweep;
    /// otherwise failing points are skipped (observe them via
    /// [`Sweep::run_outcomes`] or [`Sweep::on_progress`]).
    pub fn run(&self) -> Result<Vec<RunReport>, CoreError> {
        let mut reports = Vec::new();
        for outcome in self.run_outcomes() {
            match outcome {
                SweepOutcome::Completed { report, .. } => reports.push(*report),
                SweepOutcome::Skipped { .. } => {}
                SweepOutcome::Failed { error, .. } => return Err(error),
            }
        }
        Ok(reports)
    }

    /// The base job the sweep was constructed with.
    pub fn base_job(&self) -> &TrainJob {
        &self.base_job
    }
}

/// Total descending order on metric values: higher finite values first,
/// non-finite values (NaN, ±∞) last.
///
/// Replaces `partial_cmp(..).expect(..)` comparators, which panic the
/// moment a degenerate configuration produces a NaN metric.
pub fn rank_desc(a: f64, b: f64) -> Ordering {
    match (a.is_finite(), b.is_finite()) {
        (true, true) => b.total_cmp(&a),
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// The best report by a metric (higher is better). Reports with
/// non-finite metric values are ignored; returns `None` if no report has
/// a finite metric. Ties keep the earliest report.
pub fn best_by(reports: &[RunReport], metric: impl Fn(&RunReport) -> f64) -> Option<&RunReport> {
    reports
        .iter()
        .filter(|r| metric(r).is_finite())
        .min_by(|a, b| rank_desc(metric(a), metric(b)))
}

/// Normalize a metric across reports to the best value (the paper's
/// "efficiency normalized per model, best = 1"). Non-finite metric values
/// normalize to 0 and do not influence the best.
pub fn normalized<'a>(
    reports: &'a [RunReport],
    metric: impl Fn(&RunReport) -> f64 + 'a,
) -> impl Iterator<Item = (&'a RunReport, f64)> + 'a {
    let best = reports
        .iter()
        .map(&metric)
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    reports.iter().map(move |r| {
        let v = metric(r);
        (
            r,
            if best > 0.0 && v.is_finite() {
                v / best
            } else {
                0.0
            },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::single_hgx_node;
    use charllm_models::presets as models;

    fn small_sweep(specs: Vec<ParallelismSpec>) -> Sweep {
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(4);
        Sweep::new(single_hgx_node(), job, specs).with_sim_config(SimConfig::fast())
    }

    fn mixed_specs() -> Vec<ParallelismSpec> {
        vec![
            // PP=16 does not divide into 8 GPUs with TP2: invalid world.
            ParallelismSpec::new(2, 16, 1, 1, false).unwrap(),
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
        ]
    }

    #[test]
    fn sweep_runs_multiple_specs() {
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ];
        let reports = small_sweep(specs).run().unwrap();
        assert_eq!(reports.len(), 2);
        assert_ne!(reports[0].parallelism, reports[1].parallelism);
    }

    #[test]
    fn infeasible_points_skipped() {
        let reports = small_sweep(mixed_specs()).run().unwrap();
        assert_eq!(reports.len(), 1, "bad point skipped, good one kept");
    }

    #[test]
    fn skipped_points_surface_as_structured_outcomes() {
        let outcomes = small_sweep(mixed_specs()).run_outcomes();
        assert_eq!(outcomes.len(), 2, "one outcome per point, skipped included");
        let SweepOutcome::Skipped { point, reason } = &outcomes[0] else {
            panic!("infeasible point should be Skipped, got {:?}", outcomes[0]);
        };
        assert_eq!(point.index, 0);
        assert_eq!(point.spec.label(), "TP2-PP16");
        assert!(!reason.is_empty(), "skip carries the rendered error");
        assert!(outcomes[1].report().is_some());
        assert!(!outcomes[1].is_skipped());
    }

    #[test]
    fn strict_mode_propagates_errors() {
        let specs = vec![ParallelismSpec::new(2, 16, 1, 1, false).unwrap()];
        let err = small_sweep(specs).strict().run();
        assert!(err.is_err());
    }

    #[test]
    fn strict_failures_are_failed_outcomes() {
        let outcomes = small_sweep(mixed_specs()).strict().run_outcomes();
        assert!(matches!(&outcomes[0], SweepOutcome::Failed { .. }));
        assert!(outcomes[1].report().is_some());
    }

    #[test]
    fn cached_sweep_matches_uncached_byte_for_byte() {
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ];
        let cold = small_sweep(specs.clone()).no_cache().run().unwrap();
        let cached = small_sweep(specs).run().unwrap();
        assert_eq!(cold.len(), cached.len());
        for (a, b) in cold.iter().zip(&cached) {
            assert!(a.cache.is_none(), "no_cache leaves no counters");
            let stats = b.cache.expect("cached run records counters");
            assert_eq!(stats.lookups(), 2, "one lowered + one plan lookup");
            assert_eq!(
                serde_json::to_string(&a.sim).unwrap(),
                serde_json::to_string(&b.sim).unwrap(),
                "memoization must not change simulation results"
            );
        }
    }

    #[test]
    fn shared_cache_hits_across_sweeps() {
        use crate::cache::SimCache;
        let specs = vec![ParallelismSpec::parse("TP2-PP2", 8).unwrap()];
        let cache = Arc::new(SimCache::new());
        let first = small_sweep(specs.clone())
            .with_cache(Arc::clone(&cache))
            .run()
            .unwrap();
        let stats = first[0].cache.unwrap();
        assert_eq!(stats.lowered_misses, 1, "cold cache builds the trace");
        assert_eq!(stats.plan_misses, 1);
        // Same workload again (an ablation re-run): everything is served.
        let second = small_sweep(specs)
            .with_cache(Arc::clone(&cache))
            .run()
            .unwrap();
        let stats = second[0].cache.unwrap();
        assert_eq!(stats.lowered_hits, 1, "warm cache serves the trace");
        assert_eq!(stats.plan_hits, 1, "warm cache serves the plan set");
        assert_eq!(
            serde_json::to_string(&first[0].sim).unwrap(),
            serde_json::to_string(&second[0].sim).unwrap(),
            "shared plans must not change simulation results"
        );
        let total = cache.stats();
        assert_eq!(total.lowered_hits, 1);
        assert_eq!(total.lowered_misses, 1);
    }

    #[test]
    fn parallel_sweep_is_deterministic() {
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP8", 8).unwrap(),
        ];
        let serial = small_sweep(specs.clone())
            .with_microbatches(vec![1, 2])
            .workers(1)
            .run()
            .unwrap();
        let parallel = small_sweep(specs)
            .with_microbatches(vec![1, 2])
            .workers(4)
            .run()
            .unwrap();
        assert_eq!(
            serial, parallel,
            "multi-worker run must match workers(1) exactly"
        );
    }

    #[test]
    fn progress_callback_sees_every_point() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(usize, usize, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let outcomes = small_sweep(mixed_specs())
            .workers(2)
            .on_progress(move |p| {
                sink.lock()
                    .unwrap()
                    .push((p.completed, p.total, p.outcome.is_skipped()));
            })
            .run_outcomes();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), outcomes.len());
        assert!(seen.iter().all(|&(_, total, _)| total == 2));
        let mut counts: Vec<usize> = seen.iter().map(|&(c, _, _)| c).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2], "completed counts each point once");
        assert_eq!(seen.iter().filter(|&&(_, _, skipped)| skipped).count(), 1);
    }

    #[test]
    fn points_enumerates_grid_in_order() {
        let sweep = small_sweep(mixed_specs()).with_microbatches(vec![1, 2]);
        let points = sweep.points();
        assert_eq!(points.len(), 4);
        assert!(points.iter().enumerate().all(|(i, p)| p.index == i));
        assert_eq!(points[0].spec.label(), "TP2-PP16");
        assert_eq!(points[0].microbatch, 1);
        assert_eq!(points[1].microbatch, 2);
        assert_eq!(points[2].spec.label(), "TP2-PP2");
    }

    #[test]
    fn normalization_maps_best_to_one() {
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ];
        let reports = small_sweep(specs).run().unwrap();
        let values: Vec<f64> = normalized(&reports, |r| r.tokens_per_joule)
            .map(|(_, v)| v)
            .collect();
        assert!(values.iter().cloned().fold(0.0, f64::max) == 1.0);
        assert!(values.iter().all(|&v| v > 0.0 && v <= 1.0));
    }

    #[test]
    fn rank_desc_is_total_and_puts_non_finite_last() {
        let mut values = [f64::NAN, 1.0, f64::INFINITY, 3.0, f64::NEG_INFINITY, 2.0];
        values.sort_by(|a, b| rank_desc(*a, *b));
        assert_eq!(values[0], 3.0);
        assert_eq!(values[1], 2.0);
        assert_eq!(values[2], 1.0);
        assert!(values[3..].iter().all(|v| !v.is_finite()));
        // Total: sorting a NaN-bearing slice must not panic (it just did
        // not) and must be deterministic.
        let mut again = [f64::NAN, 1.0, f64::INFINITY, 3.0, f64::NEG_INFINITY, 2.0];
        again.sort_by(|a, b| rank_desc(*a, *b));
        assert_eq!(values[..3], again[..3]);
    }

    #[test]
    fn best_by_ignores_non_finite_metrics() {
        let specs = vec![ParallelismSpec::parse("TP2-PP2", 8).unwrap()];
        let reports = small_sweep(specs).run().unwrap();
        // A NaN metric must not panic and must not win.
        let best = best_by(&reports, |r| {
            if r.parallelism == "TP2-PP2" {
                f64::NAN
            } else {
                r.tokens_per_s
            }
        });
        assert!(best.is_none(), "all metrics NaN -> no best");
        let best = best_by(&reports, |r| r.tokens_per_s);
        assert!(best.is_some());
    }

    #[test]
    fn normalized_handles_nan_metrics_without_panicking() {
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ];
        let reports = small_sweep(specs).run().unwrap();
        let values: Vec<f64> = normalized(&reports, |r| {
            if r.parallelism == "TP2-PP2" {
                f64::NAN
            } else {
                r.tokens_per_s
            }
        })
        .map(|(_, v)| v)
        .collect();
        assert_eq!(values.len(), 2);
        let nan_idx = reports
            .iter()
            .position(|r| r.parallelism == "TP2-PP2")
            .unwrap();
        assert_eq!(values[nan_idx], 0.0, "NaN metric normalizes to 0");
        assert_eq!(values[1 - nan_idx], 1.0, "finite best still maps to 1");
    }
}
