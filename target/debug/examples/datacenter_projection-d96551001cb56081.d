/root/repo/target/debug/examples/datacenter_projection-d96551001cb56081.d: examples/datacenter_projection.rs

/root/repo/target/debug/examples/datacenter_projection-d96551001cb56081: examples/datacenter_projection.rs

examples/datacenter_projection.rs:
