/root/repo/target/release/deps/charllm_thermal-86f91d5d570f5d0c.d: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs

/root/repo/target/release/deps/libcharllm_thermal-86f91d5d570f5d0c.rlib: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs

/root/repo/target/release/deps/libcharllm_thermal-86f91d5d570f5d0c.rmeta: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs

crates/thermal/src/lib.rs:
crates/thermal/src/governor.rs:
crates/thermal/src/gpu_state.rs:
crates/thermal/src/power.rs:
crates/thermal/src/rc.rs:
crates/thermal/src/variability.rs:
