/root/repo/target/debug/deps/paper_shapes-a636e99e7b799074.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-a636e99e7b799074: tests/paper_shapes.rs

tests/paper_shapes.rs:
