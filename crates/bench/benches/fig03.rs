//! Figure 3: time across kernels for GPT3-175B training with all
//! optimizations enabled, on 32×H200 and 64×H100.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, feasible, run_points, save_json};
use charllm_trace::KernelClass;

fn main() {
    banner(
        "Figure 3",
        "kernel time breakdown, GPT3-175B, all optimizations, both clusters",
    );
    let arch = gpt3_175b();
    let job = bench_job(arch.clone())
        .with_recompute(true)
        .with_cc_overlap(true);
    let mut rows = Vec::new();
    for cluster in [hgx_h200_cluster(), hgx_h100_cluster()] {
        println!("\n--- {} ---", cluster.name());
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "config", "GEMM", "Attn", "Recomp", "SendRecv", "AllRed", "other-comm"
        );
        let points: Vec<(TrainJob, ParallelismSpec)> =
            paper_parallelisms(&arch, cluster.num_gpus())
                .into_iter()
                .filter(|spec| feasible(&job, spec, &cluster))
                .map(|spec| (job.clone(), spec))
                .collect();
        for r in run_points(&cluster, &points) {
            let k = r.mean_kernel_time();
            let other_comm =
                k.comm_total() - k.get(KernelClass::SendRecv) - k.get(KernelClass::AllReduce);
            println!(
                "{:<12} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                r.parallelism,
                k.get(KernelClass::Gemm),
                k.get(KernelClass::Attention),
                k.get(KernelClass::Recompute),
                k.get(KernelClass::SendRecv),
                k.get(KernelClass::AllReduce),
                other_comm,
            );
            rows.push(serde_json::json!({
                "cluster": r.cluster,
                "parallelism": r.parallelism,
                "gemm_s": k.get(KernelClass::Gemm),
                "attention_s": k.get(KernelClass::Attention),
                "recompute_s": k.get(KernelClass::Recompute),
                "sendrecv_s": k.get(KernelClass::SendRecv),
                "allreduce_s": k.get(KernelClass::AllReduce),
                "comm_total_s": k.comm_total(),
                "compute_total_s": k.compute_total(),
            }));
        }
    }
    save_json("fig03", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: H100 spends less time in compute per step (2x GPUs)\n\
         across all schemes, while communication time is larger and skewed."
    );
}
