//! Cross-point memoization for sweeps and searches, with an optional
//! persistent disk tier.
//!
//! A [`SimCache`] remembers the two expensive, deterministic artifacts an
//! [`Experiment`](crate::Experiment) produces before simulating:
//!
//! - the **lowered trace**, a pure function of
//!   `(job, parallelism, schedule, partition, hints, inference shape)`;
//! - the **collective plan set** ([`SharedPlans`]), a pure function of
//!   `(cluster, placement, trace)`.
//!
//! Both are keyed by *content*, not identity: keys are the canonical JSON
//! serialization of the inputs (serde_json prints floats
//! shortest-roundtrip, so distinct values never collapse to one key).
//! Points of a sweep or search that resolve to the same inputs — repeated
//! evaluations of a winning configuration, power-cap or thermal ablations
//! over a fixed workload, re-runs under different [`SimConfig`] knobs
//! (simulator knobs are deliberately *not* part of the key: they change
//! how a trace is replayed, never the trace) — then lower once and route
//! collectives once, instead of once per point.
//!
//! One cache is shared by every worker of an
//! [`Executor`](crate::Executor) pool: lookups take a brief mutex on the
//! map only, building happens outside the lock, and the first publisher
//! of a key wins (duplicate concurrent builds of the same key are
//! harmless — the artifacts are deterministic). Results are byte-identical
//! with and without the cache.
//!
//! # Persistent tier
//!
//! [`SimCache::with_disk_tier`] adds a content-addressed directory below
//! the in-memory maps, so the warm path survives process boundaries (CLI
//! invocations, CI runs, server restarts). Every entry is one JSON file
//! named by the FNV-1a hash of its content key, under `lowered/` or
//! `plans/`; the file carries a format-version tag, its full content key
//! (so hash collisions are detected, never silently served) and the
//! serialized artifact. A memory miss probes the directory before
//! building; a disk hit loads the artifact into the memory tier and counts
//! as a hit ([`CacheHit::Disk`]). Anything wrong with a file — truncation,
//! corruption, a version tag from another build, a colliding key — is
//! treated as a plain miss and the entry is rebuilt and rewritten.
//!
//! Writes are deferred to [`SimCache::sync_disk`] (called by
//! `Experiment::run` after each cached run) because plan sets fill
//! *lazily*: a `SharedPlans` is inserted empty and its slots are built
//! during simulation, so persisting at insert time would write nothing.
//! `sync_disk` rewrites an entry only when it has more content than the
//! copy on disk, via a temp file + atomic rename (a crashed writer leaves
//! at most a stale temp file, never a torn entry).
//!
//! # Bounded memory
//!
//! [`SimCache::with_max_entries`] caps each in-memory family; inserting
//! past the cap evicts the least-recently-used entry (counted in
//! [`CacheStats`], and written back to the disk tier first if it carries
//! unpersisted content). The disk tier itself is unbounded — it is the
//! durable tier.
//!
//! [`SimConfig`]: charllm_sim::SimConfig

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};
use serde_json::Value;

use charllm_hw::Cluster;
use charllm_models::TrainJob;
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::{PlanSetSnapshot, SharedPlans};
use charllm_telemetry::metrics::{Counter, Gauge, MetricsShard};
use charllm_trace::lower::LoweredJob;
use charllm_trace::{DeviceHints, ExecutionTrace, InferenceConfig};

use crate::error::CoreError;

/// Version tag written into every persisted entry. Bump whenever the
/// serialized shape of [`LoweredJob`] or [`PlanSetSnapshot`] (or the key
/// derivation) changes: readers treat any other tag as a miss, so stale
/// caches age out by rebuild instead of by misdeserialization.
pub const DISK_FORMAT_VERSION: u64 = 1;

/// Where a [`SimCache`] lookup was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheHit {
    /// Served from the in-memory tier.
    Memory,
    /// Served from the disk tier (and now resident in memory too).
    Disk,
    /// Not cached anywhere: built fresh and published.
    Miss,
}

impl CacheHit {
    /// Whether the artifact was served without building it.
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheHit::Miss)
    }
}

/// Live-metrics handles of a [`SimCache`] (see [`SimCache::with_metrics`]).
/// All handles are inert when the hub is disabled. Every family is an
/// integer [`Counter`], so [`MetricsSnapshot::diff`] / [`add`] compose the
/// disk-tier counters as exactly as the memory-tier ones.
///
/// [`MetricsSnapshot::diff`]: charllm_telemetry::MetricsSnapshot::diff
/// [`add`]: charllm_telemetry::MetricsSnapshot::add
#[derive(Debug, Default)]
struct CacheMetrics {
    lowered_hits: Counter,
    lowered_misses: Counter,
    plan_hits: Counter,
    plan_misses: Counter,
    lowered_disk_hits: Counter,
    lowered_disk_misses: Counter,
    plan_disk_hits: Counter,
    plan_disk_misses: Counter,
    lowered_evictions: Counter,
    plan_evictions: Counter,
    disk_bytes_written: Counter,
    lowered_key_bytes: Counter,
    plan_key_bytes: Counter,
    lowered_entries: Gauge,
    plan_entries: Gauge,
}

impl CacheMetrics {
    fn new(shard: &MetricsShard) -> Self {
        let c = |family: &str, result: &str| {
            shard.counter(
                "cache_lookups_total",
                &[("family", family), ("result", result)],
            )
        };
        let d = |family: &str, result: &str| {
            shard.counter(
                "cache_disk_lookups_total",
                &[("family", family), ("result", result)],
            )
        };
        CacheMetrics {
            lowered_hits: c("lowered", "hit"),
            lowered_misses: c("lowered", "miss"),
            plan_hits: c("plans", "hit"),
            plan_misses: c("plans", "miss"),
            lowered_disk_hits: d("lowered", "hit"),
            lowered_disk_misses: d("lowered", "miss"),
            plan_disk_hits: d("plans", "hit"),
            plan_disk_misses: d("plans", "miss"),
            lowered_evictions: shard.counter("cache_evictions_total", &[("family", "lowered")]),
            plan_evictions: shard.counter("cache_evictions_total", &[("family", "plans")]),
            disk_bytes_written: shard.counter("cache_disk_bytes_written_total", &[]),
            lowered_key_bytes: shard
                .counter("cache_inserted_key_bytes_total", &[("family", "lowered")]),
            plan_key_bytes: shard.counter("cache_inserted_key_bytes_total", &[("family", "plans")]),
            lowered_entries: shard.gauge("cache_entries", &[("family", "lowered")]),
            plan_entries: shard.gauge("cache_entries", &[("family", "plans")]),
        }
    }
}

/// One resident entry of an in-memory tier.
#[derive(Debug)]
struct Slot<T> {
    value: Arc<T>,
    /// Recency tick for LRU eviction (monotonic per tier).
    last_used: u64,
    /// How much of this entry the disk tier already holds: 0/1 for lowered
    /// traces, the number of persisted built plans for plan sets (plan
    /// sets fill lazily during simulation, so this grows across syncs).
    persisted: u64,
}

/// One in-memory family: a content-keyed map plus an LRU clock.
#[derive(Debug)]
struct Tier<T> {
    map: HashMap<String, Slot<T>>,
    tick: u64,
}

// Manual impl: the derive would demand `T: Default`, which the cached
// artifacts don't (and needn't) satisfy.
impl<T> Default for Tier<T> {
    fn default() -> Self {
        Tier {
            map: HashMap::new(),
            tick: 0,
        }
    }
}

impl<T> Tier<T> {
    /// Look up `key`, refreshing its recency on a hit.
    fn touch(&mut self, key: &str) -> Option<Arc<T>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.last_used = tick;
            Arc::clone(&slot.value)
        })
    }

    /// Insert `value` under `key` unless a concurrent builder got there
    /// first (first insert wins; the artifacts are deterministic). Returns
    /// the resident artifact and whether this call inserted it.
    fn insert(&mut self, key: &str, value: Arc<T>, persisted: u64) -> (Arc<T>, bool) {
        self.tick += 1;
        let tick = self.tick;
        let mut inserted = false;
        let slot = self.map.entry(key.to_string()).or_insert_with(|| {
            inserted = true;
            Slot {
                value,
                last_used: tick,
                persisted,
            }
        });
        slot.last_used = tick;
        (Arc::clone(&slot.value), inserted)
    }

    /// Remove and return the least-recently-used entry. Linear scan: the
    /// map is at most `max_entries` long and evictions are rare next to a
    /// lowering, so an ordering structure would be pure overhead.
    fn evict_lru(&mut self) -> Option<(String, Slot<T>)> {
        let key = self
            .map
            .iter()
            .min_by_key(|(_, slot)| slot.last_used)
            .map(|(k, _)| k.clone())?;
        let slot = self.map.remove(&key)?;
        Some((key, slot))
    }
}

/// The content-addressed directory backing a persistent [`SimCache`].
#[derive(Debug)]
struct DiskTier {
    dir: PathBuf,
    /// Distinguishes concurrent temp files of one process; combined with
    /// the process id for cross-process uniqueness.
    nonce: AtomicU64,
}

impl DiskTier {
    fn new(dir: &Path) -> Result<Self, CoreError> {
        std::fs::create_dir_all(dir.join("lowered"))?;
        std::fs::create_dir_all(dir.join("plans"))?;
        Ok(DiskTier {
            dir: dir.to_path_buf(),
            nonce: AtomicU64::new(0),
        })
    }

    /// FNV-1a 64-bit over the content key. Stable by construction (unlike
    /// `std`'s `DefaultHasher`, whose algorithm is unspecified across
    /// releases), which the on-disk address must be. Collisions are
    /// tolerated, not assumed away: the full key inside the file is the
    /// authority, a colliding probe reads as a miss.
    fn address(key: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in key.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    fn path(&self, family: &str, key: &str) -> PathBuf {
        self.dir
            .join(family)
            .join(format!("{:016x}.json", DiskTier::address(key)))
    }

    /// The persisted payload for `key`, or `None` when the entry is
    /// absent, truncated, corrupt, from another format version, or a hash
    /// collision — every failure mode is a miss, never an error: the disk
    /// tier is an accelerator, and a bad file just means rebuilding.
    fn load(&self, family: &str, key: &str) -> Option<Value> {
        let text = std::fs::read_to_string(self.path(family, key)).ok()?;
        let mut entry: Value = serde_json::from_str(&text).ok()?;
        let tag = entry
            .get("v")
            .and_then(Value::as_number)
            .and_then(serde::Number::to_u64)?;
        if tag != DISK_FORMAT_VERSION
            || entry.get("family").and_then(Value::as_str) != Some(family)
            || entry.get("key").and_then(Value::as_str) != Some(key)
        {
            return None;
        }
        // Take the payload by value: entries run to megabytes and the doc
        // is discarded here anyway, so a clone would only burn load time.
        match &mut entry {
            Value::Object(map) => map.remove("payload"),
            _ => None,
        }
    }

    /// Persist `payload` under `key` atomically (temp file + rename into
    /// place), returning the bytes written.
    fn store(&self, family: &str, key: &str, payload: Value) -> Result<u64, CoreError> {
        let entry = serde_json::json!({
            "v": DISK_FORMAT_VERSION,
            "family": family,
            "key": key,
            "payload": payload,
        });
        let text = serde_json::to_string(&entry).expect("cache entry serializes");
        let path = self.path(family, key);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.nonce.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, text.as_bytes())?;
        std::fs::rename(&tmp, &path)?;
        Ok(text.len() as u64)
    }
}

/// Content-keyed cache of lowered traces and collective plan sets, shared
/// across the points of a sweep or search — optionally persistent and
/// optionally bounded (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct SimCache {
    lowered: Mutex<Tier<LoweredJob>>,
    plans: Mutex<Tier<SharedPlans>>,
    disk: Option<DiskTier>,
    max_entries: Option<usize>,
    lowered_hits: AtomicU64,
    lowered_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    lowered_disk_hits: AtomicU64,
    lowered_disk_misses: AtomicU64,
    plan_disk_hits: AtomicU64,
    plan_disk_misses: AtomicU64,
    lowered_evictions: AtomicU64,
    plan_evictions: AtomicU64,
    disk_bytes_written: AtomicU64,
    metrics: Option<CacheMetrics>,
}

/// Counters of a [`SimCache`], either cumulative ([`SimCache::stats`]) or
/// for one experiment ([`RunReport::cache`](crate::RunReport::cache)).
///
/// Disk counters refine, not extend, the memory counters: a disk hit is
/// counted in both `*_hits` and `*_disk_hits`, so `hits + misses ==
/// lookups` holds with or without a disk tier and pre-existing consumers
/// keep reconciling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lowered traces served without building (memory or disk).
    pub lowered_hits: u64,
    /// Lowered traces built (and published) on a cache miss.
    pub lowered_misses: u64,
    /// Collective plan sets served without creating (memory or disk).
    pub plan_hits: u64,
    /// Collective plan sets created on a cache miss.
    pub plan_misses: u64,
    /// Lowered traces loaded from the disk tier (subset of `lowered_hits`).
    pub lowered_disk_hits: u64,
    /// Disk probes for a lowered trace that found no usable entry
    /// (0 without a disk tier).
    pub lowered_disk_misses: u64,
    /// Plan sets loaded from the disk tier (subset of `plan_hits`).
    pub plan_disk_hits: u64,
    /// Disk probes for a plan set that found no usable entry
    /// (0 without a disk tier).
    pub plan_disk_misses: u64,
    /// Lowered traces evicted from the bounded in-memory tier.
    pub lowered_evictions: u64,
    /// Plan sets evicted from the bounded in-memory tier.
    pub plan_evictions: u64,
    /// Bytes persisted to the disk tier (syncs and eviction write-backs).
    pub bytes_written: u64,
}

impl CacheStats {
    /// Total lookups across both families.
    pub fn lookups(&self) -> u64 {
        self.lowered_hits + self.lowered_misses + self.plan_hits + self.plan_misses
    }

    /// Total hits across both families (memory and disk).
    pub fn hits(&self) -> u64 {
        self.lowered_hits + self.plan_hits
    }

    /// Total disk-tier hits across both families.
    pub fn disk_hits(&self) -> u64 {
        self.lowered_disk_hits + self.plan_disk_hits
    }

    /// Total evictions across both families.
    pub fn evictions(&self) -> u64 {
        self.lowered_evictions + self.plan_evictions
    }

    /// Field-wise sum: per-run deltas add to the cumulative counters
    /// exactly (everything is an integer).
    pub fn add(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            lowered_hits: self.lowered_hits + other.lowered_hits,
            lowered_misses: self.lowered_misses + other.lowered_misses,
            plan_hits: self.plan_hits + other.plan_hits,
            plan_misses: self.plan_misses + other.plan_misses,
            lowered_disk_hits: self.lowered_disk_hits + other.lowered_disk_hits,
            lowered_disk_misses: self.lowered_disk_misses + other.lowered_disk_misses,
            plan_disk_hits: self.plan_disk_hits + other.plan_disk_hits,
            plan_disk_misses: self.plan_disk_misses + other.plan_disk_misses,
            lowered_evictions: self.lowered_evictions + other.lowered_evictions,
            plan_evictions: self.plan_evictions + other.plan_evictions,
            bytes_written: self.bytes_written + other.bytes_written,
        }
    }
}

impl SimCache {
    /// An empty, unbounded, memory-only cache.
    pub fn new() -> Self {
        SimCache::default()
    }

    /// An empty cache that mirrors its hit/miss counters into live metrics:
    /// `cache_lookups_total{family, result}` and
    /// `cache_inserted_key_bytes_total{family}` counters (content keys *are*
    /// the serialized inputs, so key bytes proxy resident content size),
    /// `cache_entries{family}` gauges, and — once a disk tier or entry cap
    /// is attached — `cache_disk_lookups_total{family, result}`,
    /// `cache_evictions_total{family}` and `cache_disk_bytes_written_total`
    /// counters. [`SimCache::stats`] is unchanged and the per-experiment
    /// [`CacheStats`] deltas stay exact — the hub is an additional read
    /// path, never the source of truth.
    pub fn with_metrics(shard: &MetricsShard) -> Self {
        SimCache {
            metrics: shard.enabled().then(|| CacheMetrics::new(shard)),
            ..SimCache::default()
        }
    }

    /// Attach a persistent content-addressed tier rooted at `dir`
    /// (created, with its `lowered/` and `plans/` subdirectories, if
    /// absent). See the [module docs](self) for the entry format and
    /// failure semantics.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] when the directories cannot be created.
    pub fn with_disk_tier(mut self, dir: impl AsRef<Path>) -> Result<Self, CoreError> {
        self.disk = Some(DiskTier::new(dir.as_ref())?);
        Ok(self)
    }

    /// Cap each in-memory family at `max_entries` entries, evicting the
    /// least-recently-used entry on overflow. Evicted entries with
    /// unpersisted content are written back to the disk tier first (when
    /// one is attached), so bounding memory never loses work.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = Some(max_entries.max(1));
        self
    }

    /// Whether a persistent disk tier is attached.
    pub fn has_disk_tier(&self) -> bool {
        self.disk.is_some()
    }

    /// The content key of a lowered trace: canonical JSON of every input
    /// `lower_train`/`lower_inference` consumes. Exposed so tests can
    /// check the no-collision property directly.
    pub fn lowered_key(
        job: &TrainJob,
        spec: &ParallelismSpec,
        schedule: PipelineSchedule,
        partition: &StagePartition,
        hints: &DeviceHints,
        inference: Option<&InferenceConfig>,
    ) -> String {
        serde_json::to_string(&(job, spec, schedule, &(partition, hints, inference)))
            .expect("lowering inputs serialize")
    }

    /// The content key of a collective plan set: the cluster fingerprint,
    /// the placement, the lowered-trace key the plans belong to, and the
    /// symmetry-fold multiplicity the trace was lowered with (1 =
    /// unfolded). A folded trace has different collective ids and groups
    /// than its unfolded twin, so the two must never share a plan set.
    pub fn plan_key(
        cluster: &Cluster,
        placement: &Placement,
        lowered_key: &str,
        fold_multiplicity: u32,
    ) -> String {
        let placement = serde_json::to_string(placement).expect("placement serializes");
        let mut key = cluster.fingerprint();
        key.push('|');
        key.push_str(&placement);
        key.push('|');
        key.push_str(lowered_key);
        key.push_str("|fold=");
        key.push_str(&fold_multiplicity.to_string());
        key
    }

    /// The lowered trace for `key`, building and publishing it via `build`
    /// on a memory *and* disk miss. Returns the artifact and where it was
    /// served from.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is cached on failure.
    pub fn lowered(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<LoweredJob, CoreError>,
    ) -> Result<(Arc<LoweredJob>, CacheHit), CoreError> {
        if let Some(hit) = self.lowered.lock().expect("cache poisoned").touch(key) {
            self.lowered_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.lowered_hits.inc();
            }
            return Ok((hit, CacheHit::Memory));
        }
        // Disk probe and build both happen outside the lock: loading or
        // lowering can take milliseconds and other points must not
        // serialize behind it. A concurrent builder of the same key
        // produces identical bits; first insert wins.
        if let Some(job) = self.load_lowered(key) {
            self.lowered_hits.fetch_add(1, Ordering::Relaxed);
            self.lowered_disk_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.lowered_hits.inc();
                m.lowered_disk_hits.inc();
            }
            let entry = self.insert_lowered(key, Arc::new(job), 1);
            return Ok((entry, CacheHit::Disk));
        }
        if self.disk.is_some() {
            self.lowered_disk_misses.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.lowered_disk_misses.inc();
            }
        }
        let built = Arc::new(build()?);
        self.lowered_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.lowered_misses.inc();
        }
        let entry = self.insert_lowered(key, built, 0);
        Ok((entry, CacheHit::Miss))
    }

    /// The shared plan set for
    /// `(cluster, placement, lowered_key, fold_multiplicity)`, reloading a
    /// persisted set from the disk tier or creating an empty set sized for
    /// `trace` on a full miss. Returns the set and where it was served
    /// from. Pass `fold_multiplicity` 1 for an ordinary unfolded trace and
    /// the replica count for a symmetry-folded one (see
    /// [`charllm_sim::fold`]).
    pub fn plans(
        &self,
        cluster: &Cluster,
        placement: &Placement,
        lowered_key: &str,
        trace: &ExecutionTrace,
        fold_multiplicity: u32,
    ) -> (Arc<SharedPlans>, CacheHit) {
        let key = SimCache::plan_key(cluster, placement, lowered_key, fold_multiplicity);
        if let Some(hit) = self.plans.lock().expect("cache poisoned").touch(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.plan_hits.inc();
            }
            return (hit, CacheHit::Memory);
        }
        if let Some(set) = self.load_plans(&key, trace) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            self.plan_disk_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.plan_hits.inc();
                m.plan_disk_hits.inc();
            }
            let persisted = set.num_built() as u64;
            let entry = self.insert_plans(&key, Arc::new(set), persisted);
            return (entry, CacheHit::Disk);
        }
        if self.disk.is_some() {
            self.plan_disk_misses.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.plan_disk_misses.inc();
            }
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.plan_misses.inc();
        }
        let set = Arc::new(SharedPlans::for_trace(trace));
        let entry = self.insert_plans(&key, set, 0);
        (entry, CacheHit::Miss)
    }

    /// Persist everything the memory tiers hold that the disk tier does
    /// not: unwritten lowered traces, and plan sets with more built slots
    /// than their last persisted copy (plan sets fill lazily *during*
    /// simulation, which is why persistence is a sync and not an
    /// insert-time write). No-op without a disk tier. Returns the bytes
    /// written by this call.
    ///
    /// [`Experiment::run`](crate::Experiment::run) syncs after every
    /// cached run; long-lived holders (the job server) may also sync at
    /// their own cadence.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] when an entry cannot be written.
    pub fn sync_disk(&self) -> Result<u64, CoreError> {
        let Some(disk) = &self.disk else {
            return Ok(0);
        };
        let mut written = 0u64;
        // Collect dirty entries under the lock, write outside it (writes
        // are the slow part), then mark them persisted. A concurrent sync
        // may duplicate a write; both produce identical bits.
        let dirty: Vec<(String, Arc<LoweredJob>)> = {
            let tier = self.lowered.lock().expect("cache poisoned");
            tier.map
                .iter()
                .filter(|(_, slot)| slot.persisted == 0)
                .map(|(k, slot)| (k.clone(), Arc::clone(&slot.value)))
                .collect()
        };
        for (key, job) in dirty {
            let payload = serde_json::to_value(&*job).expect("lowered job serializes");
            written += disk.store("lowered", &key, payload)?;
            if let Some(slot) = self
                .lowered
                .lock()
                .expect("cache poisoned")
                .map
                .get_mut(&key)
            {
                slot.persisted = 1;
            }
        }
        let dirty: Vec<(String, Arc<SharedPlans>, u64)> = {
            let tier = self.plans.lock().expect("cache poisoned");
            tier.map
                .iter()
                .filter(|(_, slot)| (slot.value.num_built() as u64) > slot.persisted)
                .map(|(k, slot)| {
                    (
                        k.clone(),
                        Arc::clone(&slot.value),
                        slot.value.num_built() as u64,
                    )
                })
                .collect()
        };
        for (key, set, built) in dirty {
            let payload = serde_json::to_value(set.snapshot()).expect("plan snapshot serializes");
            written += disk.store("plans", &key, payload)?;
            if let Some(slot) = self.plans.lock().expect("cache poisoned").map.get_mut(&key) {
                slot.persisted = slot.persisted.max(built);
            }
        }
        if written > 0 {
            self.disk_bytes_written
                .fetch_add(written, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.disk_bytes_written.add(written);
            }
        }
        Ok(written)
    }

    fn load_lowered(&self, key: &str) -> Option<LoweredJob> {
        let payload = self.disk.as_ref()?.load("lowered", key)?;
        serde_json::from_value(payload).ok()
    }

    fn load_plans(&self, key: &str, trace: &ExecutionTrace) -> Option<SharedPlans> {
        let payload = self.disk.as_ref()?.load("plans", key)?;
        let snap: PlanSetSnapshot = serde_json::from_value(payload).ok()?;
        // A snapshot sized for a different trace would misroute flows;
        // treat it like any other unusable entry.
        (snap.num_collectives() == trace.num_collectives())
            .then(|| SharedPlans::from_snapshot(&snap))
    }

    fn insert_lowered(&self, key: &str, value: Arc<LoweredJob>, persisted: u64) -> Arc<LoweredJob> {
        let (entry, evicted) = {
            let mut tier = self.lowered.lock().expect("cache poisoned");
            let (entry, inserted) = tier.insert(key, value, persisted);
            if let Some(m) = &self.metrics {
                if inserted {
                    m.lowered_key_bytes.add(key.len() as u64);
                }
            }
            let evicted = self.overflow(&mut tier);
            if let Some(m) = &self.metrics {
                m.lowered_entries.set(tier.map.len() as f64);
                m.lowered_evictions.add(evicted.len() as u64);
            }
            self.lowered_evictions
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
            (entry, evicted)
        };
        // Write dirty evictees back outside the lock. A racing lookup for
        // an evicted key may rebuild before the write lands; harmless, the
        // bits are identical.
        for (ekey, slot) in evicted {
            if slot.persisted == 0 {
                self.write_back("lowered", &ekey, || {
                    serde_json::to_value(&*slot.value).expect("lowered job serializes")
                });
            }
        }
        entry
    }

    fn insert_plans(&self, key: &str, value: Arc<SharedPlans>, persisted: u64) -> Arc<SharedPlans> {
        let (entry, evicted) = {
            let mut tier = self.plans.lock().expect("cache poisoned");
            let (entry, inserted) = tier.insert(key, value, persisted);
            if let Some(m) = &self.metrics {
                if inserted {
                    m.plan_key_bytes.add(key.len() as u64);
                }
            }
            let evicted = self.overflow(&mut tier);
            if let Some(m) = &self.metrics {
                m.plan_entries.set(tier.map.len() as f64);
                m.plan_evictions.add(evicted.len() as u64);
            }
            self.plan_evictions
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
            (entry, evicted)
        };
        for (ekey, slot) in evicted {
            if (slot.value.num_built() as u64) > slot.persisted {
                self.write_back("plans", &ekey, || {
                    serde_json::to_value(slot.value.snapshot()).expect("plan snapshot serializes")
                });
            }
        }
        entry
    }

    /// Evict LRU entries until the tier respects `max_entries`.
    fn overflow<T>(&self, tier: &mut Tier<T>) -> Vec<(String, Slot<T>)> {
        let Some(cap) = self.max_entries else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while tier.map.len() > cap {
            match tier.evict_lru() {
                Some(entry) => evicted.push(entry),
                None => break,
            }
        }
        evicted
    }

    /// Best-effort eviction write-back: an I/O failure here only costs a
    /// future rebuild, it must not fail the lookup that triggered the
    /// eviction.
    fn write_back(&self, family: &str, key: &str, payload: impl FnOnce() -> Value) {
        let Some(disk) = &self.disk else { return };
        if let Ok(bytes) = disk.store(family, key, payload()) {
            self.disk_bytes_written.fetch_add(bytes, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.disk_bytes_written.add(bytes);
            }
        }
    }

    /// Cumulative counters across every worker sharing the cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lowered_hits: self.lowered_hits.load(Ordering::Relaxed),
            lowered_misses: self.lowered_misses.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            lowered_disk_hits: self.lowered_disk_hits.load(Ordering::Relaxed),
            lowered_disk_misses: self.lowered_disk_misses.load(Ordering::Relaxed),
            plan_disk_hits: self.plan_disk_hits.load(Ordering::Relaxed),
            plan_disk_misses: self.plan_disk_misses.load(Ordering::Relaxed),
            lowered_evictions: self.lowered_evictions.load(Ordering::Relaxed),
            plan_evictions: self.plan_evictions.load(Ordering::Relaxed),
            bytes_written: self.disk_bytes_written.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lowered {} hits / {} misses, plans {} hits / {} misses, \
             disk {} hits / {} misses / {} B written, {} evictions",
            self.lowered_hits,
            self.lowered_misses,
            self.plan_hits,
            self.plan_misses,
            self.disk_hits(),
            self.lowered_disk_misses + self.plan_disk_misses,
            self.bytes_written,
            self.evictions(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_models::presets as models;
    use charllm_trace::lower_train;

    fn inputs() -> (TrainJob, ParallelismSpec, StagePartition, DeviceHints) {
        let cluster = charllm_hw::presets::hgx_h200_cluster();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let spec = ParallelismSpec::parse("TP2-PP2", cluster.num_gpus()).unwrap();
        let partition = StagePartition::even(job.arch.num_layers, spec.pp).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        (job, spec, partition, hints)
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir = std::env::temp_dir().join(format!(
            "charllm-cache-{tag}-{}-{}",
            std::process::id(),
            nanos
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lowered_key_separates_inputs() {
        let (job, spec, partition, hints) = inputs();
        let key = |job: &TrainJob| {
            SimCache::lowered_key(
                job,
                &spec,
                PipelineSchedule::OneFOneB,
                &partition,
                &hints,
                None,
            )
        };
        let base = key(&job);
        assert_eq!(base, key(&job), "same inputs, same key");
        assert_ne!(base, key(&job.clone().with_global_batch(16)));
        assert_ne!(base, key(&job.clone().with_recompute(true)));
        let inference = InferenceConfig {
            batch: 1,
            prompt_len: 64,
            decode_tokens: 2,
        };
        assert_ne!(
            base,
            SimCache::lowered_key(
                &job,
                &spec,
                PipelineSchedule::OneFOneB,
                &partition,
                &hints,
                Some(&inference),
            ),
            "training and inference never alias"
        );
    }

    #[test]
    fn lowered_builds_once_and_hits_after() {
        let (job, spec, partition, hints) = inputs();
        let key = SimCache::lowered_key(
            &job,
            &spec,
            PipelineSchedule::OneFOneB,
            &partition,
            &hints,
            None,
        );
        let cache = SimCache::new();
        let build = || {
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
                .map_err(CoreError::from)
        };
        let (first, hit) = cache.lowered(&key, build).unwrap();
        assert_eq!(hit, CacheHit::Miss);
        let (second, hit) = cache
            .lowered(&key, || panic!("hit must not rebuild"))
            .unwrap();
        assert_eq!(hit, CacheHit::Memory);
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit returns the same artifact"
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                lowered_hits: 1,
                lowered_misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn build_failure_is_not_cached() {
        let cache = SimCache::new();
        let err = cache.lowered("k", || Err(CoreError::Incomplete("nope".into())));
        assert!(err.is_err());
        assert_eq!(cache.stats().lookups(), 0, "failed build leaves no trace");
        let (_, hit) = cache
            .lowered("k", || {
                let (job, spec, partition, hints) = inputs();
                lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
                    .map_err(CoreError::from)
            })
            .unwrap();
        assert_eq!(hit, CacheHit::Miss, "key stays buildable after a failure");
    }

    #[test]
    fn plan_sets_key_on_cluster_placement_and_trace() {
        let cluster = charllm_hw::presets::hgx_h200_cluster();
        let (job, spec, partition, hints) = inputs();
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let placement = Placement::identity(&cluster, lowered.trace.world()).unwrap();
        let cache = SimCache::new();
        let (set, hit) = cache.plans(&cluster, &placement, "trace-a", &lowered.trace, 1);
        assert_eq!(hit, CacheHit::Miss);
        assert_eq!(set.num_collectives(), lowered.trace.num_collectives());
        let (again, hit) = cache.plans(&cluster, &placement, "trace-a", &lowered.trace, 1);
        assert_eq!(hit, CacheHit::Memory);
        assert!(Arc::ptr_eq(&set, &again));
        let (_, hit) = cache.plans(&cluster, &placement, "trace-b", &lowered.trace, 1);
        assert_eq!(
            hit,
            CacheHit::Miss,
            "different trace key, different plan set"
        );
        let (_, hit) = cache.plans(&cluster, &placement, "trace-a", &lowered.trace, 4);
        assert_eq!(
            hit,
            CacheHit::Miss,
            "folded and unfolded plan sets never alias"
        );
        let other = charllm_hw::presets::hgx_h100_cluster();
        let other_placement = Placement::identity(&other, lowered.trace.world()).unwrap();
        let (_, hit) = cache.plans(&other, &other_placement, "trace-a", &lowered.trace, 1);
        assert_eq!(hit, CacheHit::Miss, "different cluster, different plan set");
    }

    #[test]
    fn disk_tier_survives_a_new_cache() {
        let dir = scratch_dir("roundtrip");
        let (job, spec, partition, hints) = inputs();
        let key = SimCache::lowered_key(
            &job,
            &spec,
            PipelineSchedule::OneFOneB,
            &partition,
            &hints,
            None,
        );
        let build = || {
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
                .map_err(CoreError::from)
        };
        let first = {
            let cache = SimCache::new().with_disk_tier(&dir).unwrap();
            let (lowered, hit) = cache.lowered(&key, build).unwrap();
            assert_eq!(hit, CacheHit::Miss);
            let written = cache.sync_disk().unwrap();
            assert!(written > 0, "sync persists the fresh entry");
            assert_eq!(cache.stats().bytes_written, written);
            lowered
        };
        // A fresh cache over the same directory models a new process.
        let cache = SimCache::new().with_disk_tier(&dir).unwrap();
        let (reloaded, hit) = cache
            .lowered(&key, || panic!("disk hit must not rebuild"))
            .unwrap();
        assert_eq!(hit, CacheHit::Disk);
        assert_eq!(*reloaded, *first, "reloaded artifact is identical");
        let stats = cache.stats();
        assert_eq!(stats.lowered_disk_hits, 1);
        assert_eq!(stats.lowered_hits, 1, "disk hits count as hits");
        assert_eq!(cache.sync_disk().unwrap(), 0, "nothing left to persist");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_truncated_and_mismatched_entries_are_misses() {
        let dir = scratch_dir("corrupt");
        let (job, spec, partition, hints) = inputs();
        let key = SimCache::lowered_key(
            &job,
            &spec,
            PipelineSchedule::OneFOneB,
            &partition,
            &hints,
            None,
        );
        let build = || {
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
                .map_err(CoreError::from)
        };
        {
            let cache = SimCache::new().with_disk_tier(&dir).unwrap();
            cache.lowered(&key, build).unwrap();
            cache.sync_disk().unwrap();
        }
        let path = dir
            .join("lowered")
            .join(format!("{:016x}.json", DiskTier::address(&key)));
        let pristine = std::fs::read_to_string(&path).unwrap();

        let expect_miss = |tag: &str| {
            let cache = SimCache::new().with_disk_tier(&dir).unwrap();
            let (_, hit) = cache.lowered(&key, build).unwrap();
            assert_eq!(hit, CacheHit::Miss, "{tag} must read as a miss");
            assert_eq!(cache.stats().lowered_disk_misses, 1, "{tag}");
        };

        // Truncated mid-entry.
        std::fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        expect_miss("truncated entry");
        // Outright garbage.
        std::fs::write(&path, b"not json at all").unwrap();
        expect_miss("corrupt entry");
        // A valid entry from a different format version.
        let stale = pristine.replacen(
            &format!("\"v\":{DISK_FORMAT_VERSION}"),
            &format!("\"v\":{}", DISK_FORMAT_VERSION + 1),
            1,
        );
        assert_ne!(stale, pristine, "version tag located in the entry");
        std::fs::write(&path, stale).unwrap();
        expect_miss("version-tag mismatch");
        // A colliding address holding some other key's entry (rewrite the
        // stored `key` field through the JSON layer — the raw key text is
        // escaped inside the file, so a textual replace would miss it).
        let mut doc: serde_json::Value = serde_json::from_str(&pristine).unwrap();
        if let serde_json::Value::Object(map) = &mut doc {
            map.insert(
                "key",
                serde_json::Value::String("some-other-content-key".into()),
            );
        }
        std::fs::write(&path, serde_json::to_string(&doc).unwrap()).unwrap();
        expect_miss("hash collision");

        // Every rebuild rewrote the entry on sync; the final state is
        // servable again.
        let cache = SimCache::new().with_disk_tier(&dir).unwrap();
        let (_, hit) = cache.lowered(&key, build).unwrap();
        assert_eq!(hit, CacheHit::Miss, "last miss did not sync");
        cache.sync_disk().unwrap();
        let cache = SimCache::new().with_disk_tier(&dir).unwrap();
        let (_, hit) = cache.lowered(&key, || panic!("must hit")).unwrap();
        assert_eq!(hit, CacheHit::Disk);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_sets_roundtrip_through_disk_with_built_slots() {
        let dir = scratch_dir("plans");
        let cluster = charllm_hw::presets::hgx_h200_cluster();
        let (job, spec, partition, hints) = inputs();
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let placement = Placement::identity(&cluster, lowered.trace.world()).unwrap();
        {
            let cache = SimCache::new().with_disk_tier(&dir).unwrap();
            let (set, hit) = cache.plans(&cluster, &placement, "k", &lowered.trace, 1);
            assert_eq!(hit, CacheHit::Miss);
            // An empty set has nothing to persist yet.
            assert_eq!(cache.sync_disk().unwrap(), 0);
            // Simulate filling it (as a run would) and sync again.
            let sim = charllm_sim::Simulator::new(
                &cluster,
                &placement,
                &lowered.trace,
                charllm_sim::SimConfig::fast(),
            )
            .unwrap()
            .with_shared_plans(Arc::clone(&set))
            .unwrap();
            sim.run().unwrap();
            assert!(set.num_built() > 0);
            assert!(cache.sync_disk().unwrap() > 0, "built plans persist");
        }
        let cache = SimCache::new().with_disk_tier(&dir).unwrap();
        let (set, hit) = cache.plans(&cluster, &placement, "k", &lowered.trace, 1);
        assert_eq!(hit, CacheHit::Disk);
        assert!(set.num_built() > 0, "built slots came back published");
        assert_eq!(set.num_collectives(), lowered.trace.num_collectives());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounded_tier_evicts_lru_and_counts_it() {
        let (job, spec, partition, hints) = inputs();
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let cache = SimCache::new().with_max_entries(2);
        let build = || Ok(lowered.clone());
        cache.lowered("a", build).unwrap();
        cache.lowered("b", build).unwrap();
        cache.lowered("a", || panic!("resident")).unwrap(); // a now newer than b
        cache.lowered("c", build).unwrap(); // evicts b
        assert_eq!(cache.stats().lowered_evictions, 1);
        let (_, hit) = cache.lowered("a", || panic!("a stayed resident")).unwrap();
        assert_eq!(hit, CacheHit::Memory);
        let (_, hit) = cache.lowered("b", build).unwrap();
        assert_eq!(hit, CacheHit::Miss, "b was the LRU victim");
        assert_eq!(cache.stats().lowered_evictions, 2, "refetching b evicted c");
    }

    #[test]
    fn eviction_writes_dirty_entries_back_to_disk() {
        let dir = scratch_dir("writeback");
        let (job, spec, partition, hints) = inputs();
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let cache = SimCache::new()
            .with_disk_tier(&dir)
            .unwrap()
            .with_max_entries(1);
        let build = || Ok(lowered.clone());
        cache.lowered("a", build).unwrap();
        cache.lowered("b", build).unwrap(); // evicts dirty "a" -> write-back
        let stats = cache.stats();
        assert_eq!(stats.lowered_evictions, 1);
        assert!(stats.bytes_written > 0, "dirty evictee persisted");
        let (_, hit) = cache.lowered("a", || panic!("disk has a")).unwrap();
        assert_eq!(hit, CacheHit::Disk, "evicted entry served from disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_compose_exactly() {
        // Disk hits also count as plain hits (see the `plan_hits` doc), so
        // consistent stats carry both.
        let a = CacheStats {
            lowered_hits: 1,
            plan_hits: 2,
            plan_disk_hits: 2,
            bytes_written: 10,
            ..CacheStats::default()
        };
        let b = CacheStats {
            lowered_hits: 3,
            lowered_evictions: 1,
            bytes_written: 5,
            ..CacheStats::default()
        };
        let sum = a.add(&b);
        assert_eq!(sum.lowered_hits, 4);
        assert_eq!(sum.plan_disk_hits, 2);
        assert_eq!(sum.lowered_evictions, 1);
        assert_eq!(sum.bytes_written, 15);
        assert_eq!(sum.hits(), 6);
        assert_eq!(sum.disk_hits(), 2);
        assert_eq!(sum.evictions(), 1);
    }
}
