//! Configuration search: the paper's closing recommendation — "strategy-
//! aware, topology-conscious tuning of system parameters" — as an
//! executable tool.
//!
//! [`search_configs`] enumerates every feasible parallelism configuration
//! for a model × cluster pair, scores each with the fast analytic estimator
//! ([`charllm_sim::analytic`]), and fully simulates the top candidates to
//! produce a ranked list with power/thermal context.

use serde::{Deserialize, Serialize};

use charllm_hw::Cluster;
use charllm_models::TrainJob;
use charllm_parallel::enumerate::{valid_configs, EnumerateOptions};
use charllm_parallel::{ParallelismSpec, Placement, PipelineSchedule, StagePartition};
use charllm_sim::analytic::{estimate, AnalyticEstimate};
use charllm_sim::SimConfig;
use charllm_trace::{lower_train, DeviceHints};

use crate::error::CoreError;
use crate::experiment::Experiment;
use crate::report::RunReport;

/// What the search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Maximize training throughput (tokens/s).
    #[default]
    Throughput,
    /// Maximize energy efficiency (tokens/J).
    Efficiency,
}

/// One scored candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The configuration.
    pub spec: ParallelismSpec,
    /// The fast analytic screen.
    pub analytic: AnalyticEstimate,
    /// The full simulation report (only for finalists).
    pub report: Option<RunReport>,
}

/// Search options.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Objective to rank by.
    pub objective: Objective,
    /// How many analytically screened candidates get a full simulation.
    pub finalists: usize,
    /// Simulator configuration for the finalists.
    pub sim: SimConfig,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            objective: Objective::default(),
            finalists: 3,
            sim: SimConfig::default(),
        }
    }
}

/// Enumerate, screen and rank configurations for a job on a cluster.
///
/// Returns candidates sorted best-first: finalists (fully simulated and
/// ranked by the objective) followed by the remaining screened candidates
/// in analytic order.
///
/// # Errors
///
/// Propagates lowering/simulation errors for finalists; screening errors
/// silently drop a candidate (infeasible corners are expected).
pub fn search_configs(
    job: &TrainJob,
    cluster: &Cluster,
    opts: SearchOptions,
) -> Result<Vec<Candidate>, CoreError> {
    let specs = valid_configs(job, cluster, EnumerateOptions::default());
    let hints = DeviceHints::for_spec(cluster.gpu());
    let mut screened: Vec<Candidate> = Vec::new();
    for spec in specs {
        let Ok(partition) = StagePartition::even(job.arch.num_layers, spec.pp) else {
            continue;
        };
        let Ok(lowered) =
            lower_train(job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
        else {
            continue;
        };
        let Ok(placement) = Placement::identity(cluster, spec.world()) else { continue };
        let Ok(analytic) = estimate(cluster, &placement, &lowered.trace) else { continue };
        screened.push(Candidate { spec, analytic, report: None });
    }
    // Analytic ranking (throughput; efficiency needs power, so the full
    // simulation refines it among the finalists).
    screened.sort_by(|a, b| {
        b.analytic
            .tokens_per_s
            .partial_cmp(&a.analytic.tokens_per_s)
            .expect("finite estimates")
    });

    let n = opts.finalists.min(screened.len());
    for candidate in screened.iter_mut().take(n) {
        let report = Experiment::builder()
            .cluster(cluster.clone())
            .job(job.clone())
            .spec(candidate.spec)
            .sim_config(opts.sim)
            .run()?;
        candidate.report = Some(report);
    }
    // Final ranking: simulated finalists by the objective, then the rest.
    let metric = |c: &Candidate| -> f64 {
        match (&c.report, opts.objective) {
            (Some(r), Objective::Throughput) => r.tokens_per_s,
            (Some(r), Objective::Efficiency) => r.tokens_per_joule * 1e9,
            (None, _) => c.analytic.tokens_per_s * 1e-6,
        }
    };
    screened.sort_by(|a, b| metric(b).partial_cmp(&metric(a)).expect("finite metrics"));
    Ok(screened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::single_hgx_node;
    use charllm_models::presets as models;

    #[test]
    fn search_ranks_feasible_configs() {
        let cluster = single_hgx_node();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let opts = SearchOptions { finalists: 2, sim: SimConfig::fast(), ..Default::default() };
        let ranked = search_configs(&job, &cluster, opts).unwrap();
        assert!(ranked.len() >= 2, "expected several feasible configs");
        // Finalists carry full reports and are sorted by the objective.
        assert!(ranked[0].report.is_some());
        assert!(ranked[1].report.is_some());
        let a = ranked[0].report.as_ref().unwrap().tokens_per_s;
        let b = ranked[1].report.as_ref().unwrap().tokens_per_s;
        assert!(a >= b);
    }

    #[test]
    fn efficiency_objective_uses_energy() {
        let cluster = single_hgx_node();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let opts = SearchOptions {
            objective: Objective::Efficiency,
            finalists: 2,
            sim: SimConfig::fast(),
        };
        let ranked = search_configs(&job, &cluster, opts).unwrap();
        let a = ranked[0].report.as_ref().unwrap().tokens_per_joule;
        let b = ranked[1].report.as_ref().unwrap().tokens_per_joule;
        assert!(a >= b);
    }

    #[test]
    fn analytic_screen_orders_like_full_sim_for_extremes() {
        // The screen must put a clearly bad config (pure DP-less deep TP on
        // one node vs balanced) below a clearly good one.
        let cluster = single_hgx_node();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let opts = SearchOptions { finalists: 0, sim: SimConfig::fast(), ..Default::default() };
        let ranked = search_configs(&job, &cluster, opts).unwrap();
        assert!(!ranked.is_empty());
        let first = ranked.first().unwrap().analytic.tokens_per_s;
        let last = ranked.last().unwrap().analytic.tokens_per_s;
        assert!(first >= last);
    }
}
