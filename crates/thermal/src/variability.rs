//! Deterministic per-GPU hardware variability.
//!
//! The paper stresses that "even within the same GPU model, hardware
//! characteristics such as thermal behavior and throttling vary across
//! physical environments". We model two multiplicative factors per device —
//! silicon power efficiency and cooling quality — drawn deterministically
//! from the GPU index and a seed, so runs are reproducible.

use serde::{Deserialize, Serialize};

use charllm_hw::GpuId;

/// Multiplicative variability factors for one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuVariability {
    /// Dynamic-power multiplier (silicon lottery), ~±3 %.
    pub power_efficiency: f64,
    /// Thermal-resistance multiplier (paste/heatsink variance), ~±4 %.
    pub cooling: f64,
}

impl Default for GpuVariability {
    fn default() -> Self {
        GpuVariability {
            power_efficiency: 1.0,
            cooling: 1.0,
        }
    }
}

impl GpuVariability {
    /// Nominal device (no variability) — for deterministic ablations.
    pub fn nominal() -> Self {
        Self::default()
    }

    /// Deterministic variability for a GPU under a seed.
    pub fn for_gpu(gpu: GpuId, seed: u64) -> Self {
        let a = splitmix64(seed ^ (gpu.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let b = splitmix64(a);
        GpuVariability {
            power_efficiency: 1.0 + 0.03 * centered_unit(a),
            cooling: 1.0 + 0.04 * centered_unit(b),
        }
    }
}

/// SplitMix64: a tiny, high-quality 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform value in `[-1, 1]`.
fn centered_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_gpu_and_seed() {
        let a = GpuVariability::for_gpu(GpuId(5), 42);
        let b = GpuVariability::for_gpu(GpuId(5), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_gpus_differ() {
        let a = GpuVariability::for_gpu(GpuId(0), 42);
        let b = GpuVariability::for_gpu(GpuId(1), 42);
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GpuVariability::for_gpu(GpuId(0), 1);
        let b = GpuVariability::for_gpu(GpuId(0), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn factors_within_bounds() {
        for g in 0..256 {
            let v = GpuVariability::for_gpu(GpuId(g), 7);
            assert!((0.97..=1.03).contains(&v.power_efficiency), "{v:?}");
            assert!((0.96..=1.04).contains(&v.cooling), "{v:?}");
        }
    }

    #[test]
    fn population_is_roughly_centered() {
        let mean: f64 = (0..1000)
            .map(|g| GpuVariability::for_gpu(GpuId(g), 3).power_efficiency)
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 1.0).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn nominal_is_identity() {
        let v = GpuVariability::nominal();
        assert_eq!(v.power_efficiency, 1.0);
        assert_eq!(v.cooling, 1.0);
    }
}
