//! Figure 2: training throughput (top) and energy efficiency (bottom) for
//! 64×H100 vs. 32×H200 across parallelism and optimization settings.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, feasible, report_json, save_json, try_run};

fn main() {
    banner(
        "Figure 2",
        "throughput + energy efficiency, 64xH100 (scale-out) vs 32xH200 (scale-up)",
    );
    let clusters = [hgx_h200_cluster(), hgx_h100_cluster()];
    let mut rows = Vec::new();
    for arch in nvidia_models() {
        println!("\n--- {} ---", arch.name);
        println!(
            "{:<10} {:<14} {:<6} {:>12} {:>10}",
            "cluster", "config", "opt", "tokens/s", "tokens/J"
        );
        for cluster in &clusters {
            let base = bench_job(arch.clone());
            for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
                // Base and "act" variants (activation recomputation both
                // unlocks configs and costs compute; cc shown in Fig 9).
                for job in [base.clone(), base.clone().with_recompute(true)] {
                    if !feasible(&job, &spec, cluster) {
                        continue;
                    }
                    if let Some(r) = try_run(cluster, &job, spec) {
                        println!(
                            "{:<10} {:<14} {:<6} {:>12.0} {:>10.3}",
                            r.cluster,
                            r.parallelism,
                            r.optimization,
                            r.tokens_per_s,
                            r.tokens_per_joule
                        );
                        rows.push(report_json(&r));
                    }
                }
            }
        }
    }
    save_json("fig02", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: the 64xH100 cluster (2x aggregate compute) leads on\n\
         compute-bound models; for communication-bound GPT3-175B and\n\
         Mixtral-8x22B the gap narrows and 32xH200 wins energy efficiency."
    );
}
