/root/repo/target/debug/deps/charllm_telemetry-41c889b279c9e31e.d: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

/root/repo/target/debug/deps/libcharllm_telemetry-41c889b279c9e31e.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

/root/repo/target/debug/deps/libcharllm_telemetry-41c889b279c9e31e.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/aggregate.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/heatmap.rs:
crates/telemetry/src/store.rs:
crates/telemetry/src/timeseries.rs:
