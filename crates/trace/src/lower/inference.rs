//! Distributed inference lowering (§7.2, Fig. 23).
//!
//! One traced iteration = one prefill pass over a batch of prompts followed
//! by a fixed number of autoregressive decode steps. Weights are fixed, so
//! there is no gradient synchronization or optimizer — communication is
//! limited to pipeline activations, TP reductions and MoE all-to-all, which
//! is why the paper finds inference far less communication-bound than
//! training.

use charllm_models::flops::layer_fwd_flops_per_token;
use charllm_models::TrainJob;
use charllm_net::{ChunkingPolicy, CollectiveKind};
use charllm_parallel::{ParallelismSpec, RankCoords, RankGrid, StagePartition};
use serde::{Deserialize, Serialize};

use crate::builder::{CollKey, TraceBuilder};
use crate::task::ComputeKind;
use crate::trace::TraceMeta;

use super::{Ctx, DeviceHints, LoweredJob, TraceError};

/// Inference workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Concurrent sequences per iteration (the swept "microbatch").
    pub batch: usize,
    /// Prompt length for the prefill phase.
    pub prompt_len: usize,
    /// Autoregressive tokens generated per sequence.
    pub decode_tokens: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            batch: 8,
            prompt_len: 512,
            decode_tokens: 32,
        }
    }
}

/// Lower one inference iteration (prefill + decode).
///
/// # Errors
///
/// Returns [`TraceError::Mismatch`] for inconsistent spec/partition pairs or
/// a zero-sized workload.
pub fn lower_inference(
    job: &TrainJob,
    spec: &ParallelismSpec,
    partition: &StagePartition,
    hints: &DeviceHints,
    cfg: InferenceConfig,
) -> Result<LoweredJob, TraceError> {
    if partition.num_stages() != spec.pp {
        return Err(TraceError::Mismatch(format!(
            "partition has {} stages but spec.pp = {}",
            partition.num_stages(),
            spec.pp
        )));
    }
    if cfg.batch == 0 || cfg.prompt_len == 0 {
        return Err(TraceError::Mismatch(
            "inference batch and prompt must be non-zero".into(),
        ));
    }
    let grid = RankGrid::new(*spec);

    // Prefill reuses the training forward path at the prompt geometry.
    let mut prefill_job = job.clone();
    prefill_job.seq_len = cfg.prompt_len;
    prefill_job.microbatch = cfg.batch;
    prefill_job.global_batch = cfg.batch * spec.dp;
    prefill_job.optim.activation_recompute = false;

    let prefill_ctx = Ctx {
        job: &prefill_job,
        spec,
        grid: grid.clone(),
        partition,
        hints,
        tokens_mb: (cfg.batch * cfg.prompt_len) as f64,
        chunks: 1,
    };

    let mut b = TraceBuilder::new(spec.world());
    for rank in 0..spec.world() {
        let c = grid.coords(rank);
        super::lower_forward(&mut b, &prefill_ctx, rank, 0, 0);
        // The first decode step consumes the token sampled from the prefill
        // logits: the last stage feeds it back to stage 0.
        if spec.pp > 1 && cfg.decode_tokens > 0 && c.pp == spec.pp - 1 {
            let col0 = grid.rank(RankCoords { pp: 0, ..c }) as u32;
            let first_rank = grid.rank(RankCoords { pp: 0, ..c });
            let id = b.collective(
                CollKey {
                    site: "dec-next",
                    mb: 1,
                    layer: 0,
                    aux: 0,
                    group_lead: col0,
                },
                CollectiveKind::SendRecv,
                (cfg.batch * 4) as u64,
                vec![rank, first_rank],
                ChunkingPolicy::Unchunked,
                true,
            );
            b.start(rank, id);
        }
        emit_decode_steps(&mut b, &prefill_ctx, rank, c, cfg);
    }

    let tokens_generated = (cfg.batch * cfg.decode_tokens.max(1) * spec.dp) as u64;
    let meta = TraceMeta {
        label: format!(
            "{} {} inference b{}",
            job.arch.name,
            spec.label(),
            cfg.batch
        ),
        tokens_per_iteration: tokens_generated,
        cc_overlap: false,
    };
    Ok(LoweredJob {
        trace: b.build(meta),
        grad_bytes_per_rank: 0,
    })
}

fn emit_decode_steps(
    b: &mut TraceBuilder,
    ctx: &Ctx<'_>,
    rank: usize,
    c: RankCoords,
    cfg: InferenceConfig,
) {
    let arch = &ctx.job.arch;
    let spec = ctx.spec;
    let tp = spec.tp as f64;
    let tokens = cfg.batch as f64;
    let f = layer_fwd_flops_per_token(arch, cfg.prompt_len);
    let col0 = ctx.grid.rank(RankCoords { pp: 0, ..c }) as u32;
    let last_stage = spec.pp - 1;

    for t in 0..cfg.decode_tokens {
        let mb = (t + 1) as u32; // 0 is the prefill phase

        // The sampled token travels from the last stage back to stage 0.
        if spec.pp > 1 {
            let key = CollKey {
                site: "dec-next",
                mb,
                layer: 0,
                aux: 0,
                group_lead: col0,
            };
            let last_rank = ctx.grid.rank(RankCoords {
                pp: last_stage,
                ..c
            });
            let first_rank = ctx.grid.rank(RankCoords { pp: 0, ..c });
            if c.pp == 0 {
                let id = b.collective(
                    key,
                    CollectiveKind::SendRecv,
                    (cfg.batch * 4) as u64,
                    vec![last_rank, first_rank],
                    ChunkingPolicy::Unchunked,
                    true,
                );
                b.wait(rank, id);
            }
        }

        // Receive hidden state from the previous stage.
        if c.pp > 0 {
            let prev = ctx.grid.rank(RankCoords { pp: c.pp - 1, ..c });
            let id = b.collective(
                CollKey {
                    site: "dec-act",
                    mb,
                    layer: 0,
                    aux: c.pp as u32,
                    group_lead: col0,
                },
                CollectiveKind::SendRecv,
                (tokens * arch.hidden as f64 * 2.0 / tp) as u64,
                vec![prev, rank],
                ChunkingPolicy::Unchunked,
                true,
            );
            b.wait(rank, id);
        }

        let ctx_len = (cfg.prompt_len + t) as f64;
        for layer in 0..ctx.layers_in_chunk(c.pp) {
            let gl = (c.pp * ctx.layers_in_chunk(c.pp) + layer) as u32;
            // QKV/O projections for one new token per sequence.
            b.compute(rank, ComputeKind::Gemm, f.attn_gemm * tokens / tp);
            // Attention over the full KV cache.
            b.compute(
                rank,
                ComputeKind::Attention,
                4.0 * ctx_len * arch.hidden as f64 * tokens / tp,
            );
            if spec.tp > 1 {
                let group = ctx.grid.tp_group(rank);
                let id = b.collective(
                    CollKey {
                        site: "dec-ar1",
                        mb,
                        layer: gl,
                        aux: 0,
                        group_lead: group[0] as u32,
                    },
                    CollectiveKind::AllReduce,
                    (tokens * arch.hidden as f64 * 2.0) as u64,
                    group,
                    ChunkingPolicy::nccl_default(),
                    false,
                );
                b.blocking(rank, id);
            }
            match &arch.moe {
                None => b.compute(rank, ComputeKind::Gemm, f.mlp_gemm * tokens / tp),
                Some(moe) => {
                    b.compute(rank, ComputeKind::Router, f.moe_router * tokens / tp);
                    if spec.ep > 1 {
                        let group = ctx.grid.ep_group(rank);
                        let bytes =
                            (tokens * arch.hidden as f64 * 2.0 * moe.top_k as f64 / tp) as u64;
                        let id = b.collective(
                            CollKey {
                                site: "dec-a2a",
                                mb,
                                layer: gl,
                                aux: 0,
                                group_lead: group[0] as u32,
                            },
                            CollectiveKind::AllToAll,
                            bytes,
                            group,
                            ChunkingPolicy::Unchunked,
                            false,
                        );
                        b.blocking(rank, id);
                    }
                    b.compute(rank, ComputeKind::MoeGemm, f.moe_expert_gemm * tokens / tp);
                }
            }
            if spec.tp > 1 {
                let group = ctx.grid.tp_group(rank);
                let id = b.collective(
                    CollKey {
                        site: "dec-ar2",
                        mb,
                        layer: gl,
                        aux: 0,
                        group_lead: group[0] as u32,
                    },
                    CollectiveKind::AllReduce,
                    (tokens * arch.hidden as f64 * 2.0) as u64,
                    group,
                    ChunkingPolicy::nccl_default(),
                    false,
                );
                b.blocking(rank, id);
            }
        }

        // Send hidden state to the next stage, or sample + feed back.
        if c.pp < last_stage {
            let next = ctx.grid.rank(RankCoords { pp: c.pp + 1, ..c });
            let id = b.collective(
                CollKey {
                    site: "dec-act",
                    mb,
                    layer: 0,
                    aux: (c.pp + 1) as u32,
                    group_lead: col0,
                },
                CollectiveKind::SendRecv,
                (tokens * arch.hidden as f64 * 2.0 / tp) as u64,
                vec![rank, next],
                ChunkingPolicy::Unchunked,
                true,
            );
            b.start(rank, id);
        } else {
            // LM head for the new token.
            b.compute(
                rank,
                ComputeKind::Gemm,
                tokens * 2.0 * (arch.hidden * arch.vocab) as f64 / tp,
            );
            if spec.pp > 1 && t + 1 < cfg.decode_tokens {
                let key = CollKey {
                    site: "dec-next",
                    mb: mb + 1,
                    layer: 0,
                    aux: 0,
                    group_lead: col0,
                };
                let first_rank = ctx.grid.rank(RankCoords { pp: 0, ..c });
                let id = b.collective(
                    key,
                    CollectiveKind::SendRecv,
                    (cfg.batch * 4) as u64,
                    vec![rank, first_rank],
                    ChunkingPolicy::Unchunked,
                    true,
                );
                b.start(rank, id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::GpuModel;
    use charllm_models::presets;

    fn hints() -> DeviceHints {
        DeviceHints::for_spec(&GpuModel::H200.spec())
    }

    fn lower(batch: usize, tp: usize, pp: usize) -> LoweredJob {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(tp, pp, 1, 32, false).unwrap();
        let partition = StagePartition::even(96, pp).unwrap();
        lower_inference(
            &job,
            &spec,
            &partition,
            &hints(),
            InferenceConfig {
                batch,
                prompt_len: 256,
                decode_tokens: 8,
            },
        )
        .unwrap()
    }

    #[test]
    fn inference_trace_validates() {
        let l = lower(4, 8, 4);
        let problems = l.trace.validate();
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn no_gradient_collectives() {
        use charllm_net::CollectiveKind;
        let l = lower(4, 8, 4);
        assert!(l
            .trace
            .collectives()
            .iter()
            .all(|c| !matches!(c.kind, CollectiveKind::ReduceScatter)));
        assert_eq!(l.grad_bytes_per_rank, 0);
    }

    #[test]
    fn decode_chain_exists_for_pipelined_inference() {
        let l = lower(2, 8, 4);
        let dec_links = l
            .trace
            .collectives()
            .iter()
            .filter(|c| c.bytes_per_rank == 8) // batch(2) * 4 bytes token ids
            .count();
        assert!(dec_links > 0, "token feedback path present");
    }

    #[test]
    fn larger_batch_processes_more_tokens() {
        let small = lower(2, 8, 4);
        let large = lower(8, 8, 4);
        assert!(large.trace.meta().tokens_per_iteration > small.trace.meta().tokens_per_iteration);
        assert!(large.trace.total_flops() > small.trace.total_flops());
    }

    #[test]
    fn inference_comm_lighter_than_training() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap();
        let partition = StagePartition::even(96, 4).unwrap();
        let train =
            super::super::lower_train(&job, &spec, Default::default(), &partition, &hints())
                .unwrap();
        let infer = lower(4, 8, 4);
        assert!(infer.trace.total_comm_bytes() < train.trace.total_comm_bytes() / 4);
    }

    #[test]
    fn zero_batch_rejected() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap();
        let partition = StagePartition::even(96, 4).unwrap();
        assert!(lower_inference(
            &job,
            &spec,
            &partition,
            &hints(),
            InferenceConfig {
                batch: 0,
                prompt_len: 128,
                decode_tokens: 4
            },
        )
        .is_err());
    }
}
