//! Error types for workload-model construction.

use std::fmt;

/// Errors raised while building or validating workload models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// An architecture field was inconsistent (e.g. hidden size not divisible
    /// by the number of heads).
    InvalidArch(String),
    /// A training-job field was inconsistent (e.g. microbatch larger than the
    /// global batch, or not dividing it).
    InvalidJob(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidArch(msg) => write!(f, "invalid architecture: {msg}"),
            ModelError::InvalidJob(msg) => write!(f, "invalid training job: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_reason() {
        let e = ModelError::InvalidArch("hidden not divisible by heads".into());
        assert!(e.to_string().contains("hidden not divisible"));
    }
}
