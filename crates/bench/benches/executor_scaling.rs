//! Executor scaling: one ≥8-point sweep executed with `workers(1)` and
//! with the full worker pool, reporting wall-clock for both and checking
//! that the parallel run returns byte-identical reports in the same
//! order. On a multi-core runner the pooled run should show a clear
//! speedup; on a single core it degenerates to the serial path.

use std::time::Instant;

use charllm::prelude::*;
use charllm_bench::{banner, save_json, sim_config};
use charllm_models::presets as models;

fn main() {
    banner(
        "Executor scaling",
        "parallel sweep vs serial sweep, identical results",
    );
    let specs: Vec<ParallelismSpec> = ["TP2-PP2", "TP4-PP2", "TP8", "TP2-PP4"]
        .iter()
        .map(|label| ParallelismSpec::parse(label, 8).expect("valid label"))
        .collect();
    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
    let sweep = Sweep::new(single_hgx_node(), job, specs)
        .with_microbatches(vec![1, 2])
        .with_sim_config(sim_config());
    let total = sweep.points().len();
    println!("sweep points: {total}");
    assert!(total >= 8, "scaling bench needs a non-trivial grid");

    let start = Instant::now();
    let serial = sweep.clone().workers(1).run().expect("serial sweep");
    let serial_s = start.elapsed().as_secs_f64();

    let pool = Executor::auto().workers();
    let start = Instant::now();
    let parallel = sweep.workers(0).run().expect("parallel sweep");
    let parallel_s = start.elapsed().as_secs_f64();

    assert_eq!(serial, parallel, "worker pool must not change results");
    let speedup = serial_s / parallel_s.max(1e-9);
    println!("workers(1):      {serial_s:>8.3} s");
    println!("workers({pool}) auto: {parallel_s:>8.3} s  ({speedup:.2}x)");

    save_json(
        "executor_scaling",
        &serde_json::json!({
            "points": total,
            "workers": pool,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": speedup,
        }),
    );
}
