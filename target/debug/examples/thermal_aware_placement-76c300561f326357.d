/root/repo/target/debug/examples/thermal_aware_placement-76c300561f326357.d: examples/thermal_aware_placement.rs Cargo.toml

/root/repo/target/debug/examples/libthermal_aware_placement-76c300561f326357.rmeta: examples/thermal_aware_placement.rs Cargo.toml

examples/thermal_aware_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
