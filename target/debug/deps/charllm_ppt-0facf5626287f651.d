/root/repo/target/debug/deps/charllm_ppt-0facf5626287f651.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_ppt-0facf5626287f651.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
