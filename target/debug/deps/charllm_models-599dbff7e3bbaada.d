/root/repo/target/debug/deps/charllm_models-599dbff7e3bbaada.d: crates/models/src/lib.rs crates/models/src/arch.rs crates/models/src/error.rs crates/models/src/flops.rs crates/models/src/job.rs crates/models/src/lora.rs crates/models/src/memory.rs crates/models/src/precision.rs crates/models/src/presets.rs

/root/repo/target/debug/deps/charllm_models-599dbff7e3bbaada: crates/models/src/lib.rs crates/models/src/arch.rs crates/models/src/error.rs crates/models/src/flops.rs crates/models/src/job.rs crates/models/src/lora.rs crates/models/src/memory.rs crates/models/src/precision.rs crates/models/src/presets.rs

crates/models/src/lib.rs:
crates/models/src/arch.rs:
crates/models/src/error.rs:
crates/models/src/flops.rs:
crates/models/src/job.rs:
crates/models/src/lora.rs:
crates/models/src/memory.rs:
crates/models/src/precision.rs:
crates/models/src/presets.rs:
