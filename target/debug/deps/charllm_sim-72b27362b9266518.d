/root/repo/target/debug/deps/charllm_sim-72b27362b9266518.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/libcharllm_sim-72b27362b9266518.rlib: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/libcharllm_sim-72b27362b9266518.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/result.rs:
