//! Sim-as-a-service: a std-only HTTP job server over the simulation stack.
//!
//! ROADMAP item 5 frames the simulator as shared infrastructure queried
//! repeatedly by many users. [`SimServer`] is that deployment shape: a
//! long-running process owning one [`SimCache`] (optionally persistent,
//! see [`SimCache::with_disk_tier`]) that serves concurrent sweep and
//! configuration-search jobs, so every warm-path win — memoized lowering,
//! shared collective plans, the disk tier — compounds across clients
//! instead of evaporating at process exit.
//!
//! # Protocol
//!
//! Plain HTTP/1.1 over [`std::net::TcpListener`] (the vendored-deps
//! constraint rules out any HTTP crate; every response closes the
//! connection, so clients need nothing beyond a socket and a JSON
//! parser). Endpoints:
//!
//! | Method & path          | Meaning                                       |
//! |------------------------|-----------------------------------------------|
//! | `POST /jobs`           | Submit a job (JSON body, see below); `202` + `{"job": id}` |
//! | `GET /jobs`            | List jobs with states                         |
//! | `GET /jobs/{id}`       | One job's status                              |
//! | `GET /jobs/{id}/stream`| Live JSONL [`ProgressEvent`](crate::stream::ProgressEvent) stream (close-delimited) |
//! | `GET /jobs/{id}/result`| Final result document (`404` until done)      |
//! | `POST /jobs/{id}/cancel` | Cooperative cancel (pending points skip)    |
//! | `GET /jobs/{id}/trace/{point}` | Perfetto `traceEvents` JSON for one sweep point |
//! | `GET /cache`           | Shared-cache [`CacheStats`] + tier info       |
//! | `GET /metrics`         | Server-hub Prometheus text                    |
//! | `GET /healthz`         | Liveness probe                                |
//!
//! A job request names presets rather than carrying full topologies —
//! the server owns the cluster zoo:
//!
//! ```json
//! {"kind": "sweep", "cluster": "hgx_h200", "model": "gpt3_13b",
//!  "global_batch": 8, "specs": ["TP2-PP2", "TP4-PP2"],
//!  "microbatches": [1], "fast": true, "workers": 2}
//! ```
//!
//! `"kind": "search"` instead takes `"finalists"` and `"objective"`
//! (`"throughput"` / `"efficiency"`) and runs
//! [`search_configs_with_cache`] over the same shared cache.
//!
//! # Concurrency
//!
//! Submitted jobs enter a queue drained by a bounded pool of
//! [`ServerConfig::job_workers`] threads, so up to that many jobs run
//! concurrently, all sharing the one cache; each sweep job additionally
//! fans its points across its own [`Executor`](crate::Executor) pool
//! ([`ServerConfig::sweep_workers`] wide). Every job gets a private
//! [`MetricsHub`], so its streamed snapshot deltas reconcile exactly
//! against its own `sweep_end` snapshot no matter what its neighbors do.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::{json, Value};

use charllm_hw::{Cluster, GpuId};
use charllm_models::TrainJob;
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::{SimConfig, Simulator};
use charllm_telemetry::metrics::MetricsHub;
use charllm_telemetry::{chrome_trace, SpanRecorder};
use charllm_trace::{lower_train, DeviceHints};

use crate::cache::{CacheStats, SimCache};
use crate::error::CoreError;
use crate::search::{search_configs_with_cache, Objective, SearchOptions};
use crate::stream::ProgressStream;
use crate::sweep::Sweep;

/// How long a connection may dribble its request before the server drops
/// it; responses (including long-lived streams) are not bounded.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server deployment knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent jobs (the bounded job-worker pool width). Default 4.
    pub job_workers: usize,
    /// `Executor` width inside each sweep/search job (`0` = one per
    /// core — avoid with several job workers). Default 2.
    pub sweep_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            job_workers: 4,
            sweep_workers: 2,
        }
    }
}

/// What a job is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobState {
    fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// A parsed, validated job submission.
#[derive(Debug, Clone)]
struct JobRequest {
    kind: String,
    cluster: String,
    model: String,
    global_batch: usize,
    specs: Vec<String>,
    microbatches: Vec<usize>,
    fast: bool,
    workers: usize,
    finalists: usize,
    objective: Objective,
}

impl JobRequest {
    /// Parse a submission body. Absent fields default; unknown presets
    /// and empty grids are rejected here so the queue only ever holds
    /// runnable jobs.
    fn parse(body: &Value, defaults: &ServerConfig) -> Result<JobRequest, String> {
        let get_str = |k: &str, d: &str| -> String {
            body.get(k).and_then(Value::as_str).unwrap_or(d).into()
        };
        let get_usize = |k: &str, d: usize| -> usize {
            body.get(k)
                .and_then(Value::as_number)
                .and_then(serde::Number::to_u64)
                .map_or(d, |v| v as usize)
        };
        let kind = get_str("kind", "sweep");
        if kind != "sweep" && kind != "search" {
            return Err(format!("unknown job kind {kind:?}"));
        }
        let specs: Vec<String> = body
            .get("specs")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        if kind == "sweep" && specs.is_empty() {
            return Err("sweep jobs need a non-empty \"specs\" list".into());
        }
        let microbatches: Vec<usize> = body
            .get("microbatches")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_number)
                    .filter_map(serde::Number::to_u64)
                    .map(|v| v as usize)
                    .collect()
            })
            .filter(|v: &Vec<usize>| !v.is_empty())
            .unwrap_or_else(|| vec![1]);
        let req = JobRequest {
            kind,
            cluster: get_str("cluster", "hgx_h200"),
            model: get_str("model", "gpt3_13b"),
            global_batch: get_usize("global_batch", 8),
            specs,
            microbatches,
            fast: body.get("fast").and_then(Value::as_bool).unwrap_or(true),
            workers: get_usize("workers", defaults.sweep_workers),
            finalists: get_usize("finalists", 3),
            objective: match get_str("objective", "throughput").as_str() {
                "throughput" => Objective::Throughput,
                "efficiency" => Objective::Efficiency,
                other => return Err(format!("unknown objective {other:?}")),
            },
        };
        req.resolve()?; // fail fast on bad presets / specs
        Ok(req)
    }

    /// Materialize presets into the concrete cluster, job and spec grid.
    fn resolve(&self) -> Result<(Arc<Cluster>, TrainJob, Vec<ParallelismSpec>), String> {
        use charllm_hw::presets as hw;
        use charllm_models::presets as models;
        let cluster = match self.cluster.as_str() {
            "hgx_h200" => hw::hgx_h200_cluster(),
            "hgx_h100" => hw::hgx_h100_cluster(),
            "mi250" => hw::mi250_cluster(),
            "single_hgx_node" => crate::presets::single_hgx_node(),
            other => return Err(format!("unknown cluster preset {other:?}")),
        };
        let arch = match self.model.as_str() {
            "gpt3_13b" => models::gpt3_13b(),
            "gpt3_30b" => models::gpt3_30b(),
            "gpt3_175b" => models::gpt3_175b(),
            "llama3_30b" => models::llama3_30b(),
            "llama3_70b" => models::llama3_70b(),
            "mixtral_4x7b" => models::mixtral_4x7b(),
            "mixtral_8x7b" => models::mixtral_8x7b(),
            "mixtral_8x22b" => models::mixtral_8x22b(),
            other => return Err(format!("unknown model preset {other:?}")),
        };
        let job = TrainJob::pretrain(arch).with_global_batch(self.global_batch);
        let world = cluster.num_gpus();
        let specs = self
            .specs
            .iter()
            .map(|label| {
                ParallelismSpec::parse(label, world).map_err(|e| format!("bad spec {label:?}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((Arc::new(cluster), job, specs))
    }

    fn sim_config(&self) -> SimConfig {
        if self.fast {
            SimConfig::fast()
        } else {
            SimConfig::default()
        }
    }
}

/// The append-only byte log a job's JSONL stream writes into, shared
/// between the job worker (producer) and any number of `/stream`
/// connections (consumers). Consumers block on the condvar until more
/// bytes arrive or the job finishes, so a stream is live — lines appear
/// as points finish — and late subscribers still replay from the start.
#[derive(Default)]
struct JobSink {
    state: Mutex<SinkState>,
    cv: Condvar,
}

#[derive(Default)]
struct SinkState {
    bytes: Vec<u8>,
    done: bool,
}

impl JobSink {
    fn append(&self, chunk: &[u8]) {
        let mut st = self.state.lock().expect("sink poisoned");
        st.bytes.extend_from_slice(chunk);
        drop(st);
        self.cv.notify_all();
    }

    fn finish(&self) {
        self.state.lock().expect("sink poisoned").done = true;
        self.cv.notify_all();
    }

    /// Bytes past `pos`, blocking until there are any or the job is done.
    /// Returns `(chunk, done)`; an empty chunk with `done` means fully
    /// drained.
    fn wait_from(&self, pos: usize) -> (Vec<u8>, bool) {
        let mut st = self.state.lock().expect("sink poisoned");
        while st.bytes.len() <= pos && !st.done {
            st = self.cv.wait(st).expect("sink poisoned");
        }
        let chunk = st.bytes.get(pos..).map(<[u8]>::to_vec).unwrap_or_default();
        (chunk, st.done)
    }
}

/// `Write` adapter handed to [`ProgressStream`]: every JSONL line the
/// sweep emits lands in the job's sink.
struct SinkWriter(Arc<JobSink>);

impl Write for SinkWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.append(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One submitted job.
struct Job {
    id: u64,
    request: JobRequest,
    state: Mutex<JobState>,
    cancel: Arc<AtomicBool>,
    sink: Arc<JobSink>,
    /// The final result document (or `{"error": ...}` on failure).
    result: Mutex<Option<Value>>,
    /// Total sweep points (0 for search jobs, whose grid is enumerated
    /// inside the search).
    total_points: usize,
}

impl Job {
    fn status(&self) -> Value {
        json!({
            "job": self.id,
            "kind": self.request.kind,
            "state": self.state.lock().expect("job poisoned").label(),
            "canceled": self.cancel.load(Ordering::Relaxed),
            "points": self.total_points,
        })
    }
}

/// Shared server state: the cache, the job registry and the queue.
struct ServerState {
    cfg: ServerConfig,
    cache: Arc<SimCache>,
    hub: Arc<MetricsHub>,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    next_id: AtomicU64,
    stop: AtomicBool,
}

impl ServerState {
    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().expect("jobs poisoned").get(&id).cloned()
    }
}

/// A running sim server: accept loop plus the bounded job-worker pool.
/// Dropping without [`SimServer::shutdown`] detaches the threads (they
/// die with the process); tests and the example shut down explicitly.
pub struct SimServer {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for SimServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimServer")
            .field("addr", &self.addr)
            .field("job_workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl SimServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `cache` — typically persistent and/or bounded; the server adds no
    /// tiers of its own. The server registers its own counters
    /// (`server_jobs_*`) on a private hub served at `/metrics`; build the
    /// cache [`with metrics`](SimCache::with_metrics) on that hub via
    /// [`SimServer::bind`]'s sibling pattern if cache series are wanted
    /// there too.
    ///
    /// # Errors
    ///
    /// Propagates socket errors as [`CoreError::Io`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        cache: Arc<SimCache>,
        cfg: ServerConfig,
    ) -> Result<SimServer, CoreError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = Arc::new(ServerState {
            cfg: cfg.clone(),
            cache,
            hub: MetricsHub::new(1),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            stop: AtomicBool::new(false),
        });
        let workers = (0..cfg.job_workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || job_worker(&state))
            })
            .collect();
        let accept = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(&listener, &state))
        };
        Ok(SimServer {
            state,
            addr: local,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared cache (e.g. to sync or inspect stats out-of-band).
    pub fn cache(&self) -> Arc<SimCache> {
        Arc::clone(&self.state.cache)
    }

    /// Stop accepting, drain nothing further from the queue, wait for
    /// in-flight jobs to finish, and join every thread. Queued-but-unrun
    /// jobs stay `queued` forever; cancel them first if that matters.
    pub fn shutdown(mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        self.state.queue_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// One job-worker thread: pull ids off the queue until shutdown.
fn job_worker(state: &Arc<ServerState>) {
    loop {
        let id = {
            let mut queue = state.queue.lock().expect("queue poisoned");
            loop {
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                queue = state.queue_cv.wait(queue).expect("queue poisoned");
            }
        };
        let Some(job) = state.job(id) else { continue };
        *job.state.lock().expect("job poisoned") = JobState::Running;
        let result = run_job(state, &job);
        let (final_state, doc) = match result {
            Ok(doc) => (JobState::Done, doc),
            Err(e) => (JobState::Failed, json!({ "error": e.to_string() })),
        };
        *job.result.lock().expect("job poisoned") = Some(doc);
        *job.state.lock().expect("job poisoned") = final_state;
        job.sink.finish();
        state
            .hub
            .shard(0)
            .counter(
                "server_jobs_finished_total",
                &[("state", final_state.label())],
            )
            .inc();
    }
}

/// Execute one job against the shared cache and produce its result
/// document.
fn run_job(state: &Arc<ServerState>, job: &Arc<Job>) -> Result<Value, CoreError> {
    let req = &job.request;
    let (cluster, train_job, specs) = req.resolve().map_err(CoreError::Incomplete)?;
    if req.kind == "search" {
        let opts = SearchOptions {
            objective: req.objective,
            finalists: req.finalists,
            sim: req.sim_config(),
            workers: req.workers,
        };
        let ranked =
            search_configs_with_cache(&train_job, &cluster, opts, Arc::clone(&state.cache))?;
        // The screen phase lowers outside Experiment::run; persist its
        // publications too.
        state.cache.sync_disk()?;
        let candidates: Vec<Value> = ranked
            .iter()
            .map(|c| {
                json!({
                    "spec": c.spec.label(),
                    "analytic_tokens_per_s": c.analytic.tokens_per_s,
                    "tokens_per_s": c.report.as_ref().map_or(0.0, |r| r.tokens_per_s),
                    "tokens_per_joule": c.report.as_ref().map_or(0.0, |r| r.tokens_per_joule),
                    "simulated": c.report.is_some(),
                })
            })
            .collect();
        return Ok(json!({ "kind": "search", "candidates": candidates }));
    }
    // Per-job hub: streamed deltas reconcile against this job's own final
    // snapshot, independent of concurrent neighbors.
    let hub = MetricsHub::new(req.workers.max(1) + 1);
    let stream = Arc::new(ProgressStream::new(SinkWriter(Arc::clone(&job.sink))));
    let sweep = Sweep::new(Arc::clone(&cluster), train_job, specs)
        .with_microbatches(req.microbatches.clone())
        .with_sim_config(req.sim_config())
        .workers(req.workers)
        .with_cache(Arc::clone(&state.cache))
        .with_metrics(Arc::clone(&hub))
        .stream(stream)
        .cancel_flag(Arc::clone(&job.cancel));
    let outcomes = sweep.run_outcomes();
    let mut cache_total = CacheStats::default();
    let points: Vec<Value> = outcomes
        .iter()
        .map(|o| {
            let point = o.point();
            let (outcome, reason) = match o {
                crate::sweep::SweepOutcome::Completed { .. } => ("completed", String::new()),
                crate::sweep::SweepOutcome::Skipped { reason, .. } => ("skipped", reason.clone()),
                crate::sweep::SweepOutcome::Failed { error, .. } => ("failed", error.to_string()),
            };
            if let Some(stats) = o.report().and_then(|r| r.cache) {
                cache_total = cache_total.add(&stats);
            }
            json!({
                "index": point.index,
                "point": point.to_string(),
                "outcome": outcome,
                "reason": reason,
                "step_time_s": o.report().map_or(0.0, |r| r.step_time_s),
                "tokens_per_s": o.report().map_or(0.0, |r| r.tokens_per_s),
                "energy_per_step_j": o.report().map_or(0.0, |r| r.energy_per_step_j),
            })
        })
        .collect();
    let completed = outcomes.iter().filter(|o| o.report().is_some()).count();
    let skipped = outcomes.iter().filter(|o| o.is_skipped()).count();
    Ok(json!({
        "kind": "sweep",
        "total": outcomes.len(),
        "completed": completed,
        "skipped": skipped,
        "failed": outcomes.len() - completed - skipped,
        "cache": serde_json::to_value(cache_total).expect("stats serialize"),
        "points": points,
    }))
}

/// Accept loop: one thread per connection (connections are few and
/// `/stream` ones are long-lived, so a pool would only add latency).
fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for conn in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(conn) = conn else { continue };
        let state = Arc::clone(state);
        std::thread::spawn(move || {
            let _ = handle_connection(conn, &state);
        });
    }
}

/// A minimal parsed HTTP request.
struct Request {
    method: String,
    path: String,
    body: Value,
}

fn read_request(conn: &TcpStream) -> Result<Request, CoreError> {
    conn.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let bad = || CoreError::Incomplete("malformed request line".into());
    let method = parts.next().ok_or_else(bad)?.to_string();
    let path = parts.next().ok_or_else(bad)?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length.min(1 << 20)];
    reader.read_exact(&mut body)?;
    let body = match std::str::from_utf8(&body) {
        Ok(text) if !text.is_empty() => serde_json::from_str(text).unwrap_or(Value::Null),
        _ => Value::Null,
    };
    Ok(Request { method, path, body })
}

fn respond(conn: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let _ = write!(
        conn,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = conn.flush();
}

fn respond_json(conn: &mut TcpStream, status: u16, body: &Value) {
    respond(
        conn,
        status,
        "application/json",
        &serde_json::to_string(body).expect("response serializes"),
    );
}

fn handle_connection(mut conn: TcpStream, state: &Arc<ServerState>) -> Result<(), CoreError> {
    let req = read_request(&conn)?;
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => respond(&mut conn, 200, "text/plain", "ok\n"),
        ("GET", ["metrics"]) => {
            let text = state.hub.snapshot().prometheus_text();
            respond(&mut conn, 200, "text/plain; version=0.0.4", &text);
        }
        ("GET", ["cache"]) => {
            let stats = state.cache.stats();
            let body = json!({
                "stats": serde_json::to_value(stats).expect("stats serialize"),
                "disk": state.cache.has_disk_tier(),
                "disk_hits": stats.disk_hits(),
                "evictions": stats.evictions(),
            });
            respond_json(&mut conn, 200, &body);
        }
        ("POST", ["jobs"]) => match submit(state, &req.body) {
            Ok(id) => respond_json(&mut conn, 202, &json!({ "job": id })),
            Err(msg) => respond_json(&mut conn, 400, &json!({ "error": msg })),
        },
        ("GET", ["jobs"]) => {
            let jobs = state.jobs.lock().expect("jobs poisoned");
            let mut list: Vec<(u64, Value)> =
                jobs.iter().map(|(id, j)| (*id, j.status())).collect();
            drop(jobs);
            list.sort_by_key(|(id, _)| *id);
            let list: Vec<Value> = list.into_iter().map(|(_, v)| v).collect();
            respond_json(&mut conn, 200, &json!({ "jobs": list }));
        }
        (method, ["jobs", id, rest @ ..]) => {
            let Some(job) = id.parse().ok().and_then(|id| state.job(id)) else {
                respond_json(&mut conn, 404, &json!({ "error": "no such job" }));
                return Ok(());
            };
            match (method, rest) {
                ("GET", []) => respond_json(&mut conn, 200, &job.status()),
                ("GET", ["result"]) => match &*job.result.lock().expect("job poisoned") {
                    Some(doc) => respond_json(&mut conn, 200, doc),
                    None => respond_json(&mut conn, 404, &json!({ "error": "not finished" })),
                },
                ("POST", ["cancel"]) => {
                    job.cancel.store(true, Ordering::SeqCst);
                    respond_json(&mut conn, 200, &job.status());
                }
                ("GET", ["stream"]) => stream_job(&mut conn, &job),
                ("GET", ["trace", point]) => match point.parse::<usize>() {
                    Ok(index) => match perfetto_for_point(state, &job.request, index) {
                        Ok(text) => respond(&mut conn, 200, "application/json", &text),
                        Err(e) => {
                            respond_json(&mut conn, 400, &json!({ "error": e.to_string() }));
                        }
                    },
                    Err(_) => respond_json(&mut conn, 400, &json!({ "error": "bad point index" })),
                },
                _ => respond_json(&mut conn, 404, &json!({ "error": "no such endpoint" })),
            }
        }
        _ => respond_json(&mut conn, 404, &json!({ "error": "no such endpoint" })),
    }
    Ok(())
}

/// Validate, register and enqueue a submission; returns the job id.
fn submit(state: &Arc<ServerState>, body: &Value) -> Result<u64, String> {
    let request = JobRequest::parse(body, &state.cfg)?;
    let total_points = if request.kind == "sweep" {
        request.specs.len() * request.microbatches.len()
    } else {
        0
    };
    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job {
        id,
        request,
        state: Mutex::new(JobState::Queued),
        cancel: Arc::new(AtomicBool::new(false)),
        sink: Arc::new(JobSink::default()),
        result: Mutex::new(None),
        total_points,
    });
    state.jobs.lock().expect("jobs poisoned").insert(id, job);
    state.queue.lock().expect("queue poisoned").push_back(id);
    state.queue_cv.notify_one();
    state
        .hub
        .shard(0)
        .counter("server_jobs_submitted_total", &[])
        .inc();
    Ok(id)
}

/// Serve a live JSONL stream: replay what the job already emitted, then
/// follow along until it finishes (close-delimited body).
fn stream_job(conn: &mut TcpStream, job: &Arc<Job>) {
    let _ = write!(
        conn,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    );
    let mut pos = 0usize;
    loop {
        let (chunk, done) = job.sink.wait_from(pos);
        pos += chunk.len();
        if !chunk.is_empty() {
            if conn.write_all(&chunk).is_err() {
                return; // consumer went away; the job keeps running
            }
            let _ = conn.flush();
        }
        if done && chunk.is_empty() {
            return;
        }
    }
}

/// Re-run one sweep point with a span recorder attached and export the
/// Chrome `traceEvents` JSON ([`chrome_trace::export`]). The lowering and
/// plan set come from the shared cache, so a trace download after a sweep
/// costs one extra (observed) simulation, not a cold rebuild.
fn perfetto_for_point(
    state: &Arc<ServerState>,
    req: &JobRequest,
    index: usize,
) -> Result<String, CoreError> {
    let (cluster, job, specs) = req.resolve().map_err(CoreError::Incomplete)?;
    let per_spec = req.microbatches.len();
    if req.kind != "sweep" || index >= specs.len() * per_spec {
        return Err(CoreError::Incomplete(format!(
            "point {index} outside the job's grid"
        )));
    }
    let spec = specs[index / per_spec];
    let job = job.with_microbatch(req.microbatches[index % per_spec]);
    let partition = StagePartition::even(job.arch.num_layers, spec.pp)?;
    let placement = Placement::identity(&cluster, spec.world())?;
    let hints = DeviceHints::for_spec(cluster.gpu());
    let key = SimCache::lowered_key(
        &job,
        &spec,
        PipelineSchedule::OneFOneB,
        &partition,
        &hints,
        None,
    );
    let (lowered, _) = state.cache.lowered(&key, || {
        lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
            .map_err(CoreError::from)
    })?;
    let (shared, _) = state
        .cache
        .plans(&cluster, &placement, &key, &lowered.trace, 1);
    let sim = Simulator::with_observer(
        &cluster,
        &placement,
        &lowered.trace,
        req.sim_config(),
        SpanRecorder::new(),
    )?
    .with_shared_plans(shared)?;
    let (_, recorder) = sim.run_observed()?;
    state.cache.sync_disk()?;
    let node_of_gpu: Vec<usize> = (0..cluster.num_gpus())
        .map(|g| cluster.node_of(GpuId(g as u32)).index())
        .collect();
    let events = chrome_trace::export(&recorder, &node_of_gpu);
    Ok(serde_json::to_string(&events).expect("trace serializes"))
}

/// Minimal std-only HTTP client for tests, examples and CI smokes: one
/// request, `Connection: close`, returns `(status, body)`. Reading a
/// `/stream` response blocks until the job finishes (the body is
/// close-delimited).
///
/// # Errors
///
/// Propagates socket errors as [`CoreError::Io`] and malformed responses
/// as [`CoreError::Incomplete`].
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), CoreError> {
    let mut conn = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: sim\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    conn.flush()?;
    let mut response = String::new();
    let mut reader = BufReader::new(conn);
    reader.read_to_string(&mut response)?;
    let bad = || CoreError::Incomplete("malformed response".into());
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad)?;
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(bad)?;
    Ok((status, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_request_defaults_and_validation() {
        let cfg = ServerConfig::default();
        let req = JobRequest::parse(
            &json!({ "specs": ["TP2-PP2"], "cluster": "single_hgx_node" }),
            &cfg,
        )
        .unwrap();
        assert_eq!(req.kind, "sweep");
        assert_eq!(req.model, "gpt3_13b");
        assert_eq!(req.microbatches, vec![1]);
        assert_eq!(req.workers, cfg.sweep_workers);
        assert!(req.fast);

        assert!(
            JobRequest::parse(&json!({ "kind": "sweep" }), &cfg).is_err(),
            "sweep without specs rejected"
        );
        assert!(
            JobRequest::parse(&json!({ "kind": "teapot", "specs": ["TP2"] }), &cfg).is_err(),
            "unknown kind rejected"
        );
        assert!(
            JobRequest::parse(
                &json!({ "specs": ["TP2-PP2"], "cluster": "warehouse" }),
                &cfg
            )
            .is_err(),
            "unknown cluster rejected at submit time"
        );
        assert!(
            JobRequest::parse(
                &json!({ "specs": ["TP3-PP5"], "cluster": "single_hgx_node" }),
                &cfg
            )
            .is_err(),
            "unparsable spec rejected at submit time"
        );
    }

    #[test]
    fn health_and_404_over_a_real_socket() {
        let server = SimServer::bind(
            "127.0.0.1:0",
            Arc::new(SimCache::new()),
            ServerConfig {
                job_workers: 1,
                sweep_workers: 1,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let (status, body) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, _) = http_request(addr, "GET", "/jobs/999", None).unwrap();
        assert_eq!(status, 404);
        let (status, body) = http_request(addr, "GET", "/cache", None).unwrap();
        assert_eq!(status, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.get("disk").and_then(Value::as_bool), Some(false));
        server.shutdown();
    }
}
