/root/repo/target/debug/deps/charllm_bench-c97f16c116c8eb11.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/charllm_bench-c97f16c116c8eb11: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
