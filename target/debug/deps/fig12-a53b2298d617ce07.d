/root/repo/target/debug/deps/fig12-a53b2298d617ce07.d: crates/bench/benches/fig12.rs

/root/repo/target/debug/deps/fig12-a53b2298d617ce07: crates/bench/benches/fig12.rs

crates/bench/benches/fig12.rs:
