/root/repo/target/debug/deps/fig11-5a4d6942816fc6c4.d: crates/bench/benches/fig11.rs

/root/repo/target/debug/deps/fig11-5a4d6942816fc6c4: crates/bench/benches/fig11.rs

crates/bench/benches/fig11.rs:
