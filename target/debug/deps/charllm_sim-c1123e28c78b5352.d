/root/repo/target/debug/deps/charllm_sim-c1123e28c78b5352.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/charllm_sim-c1123e28c78b5352: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/result.rs:
