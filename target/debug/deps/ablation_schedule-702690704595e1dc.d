/root/repo/target/debug/deps/ablation_schedule-702690704595e1dc.d: crates/bench/benches/ablation_schedule.rs Cargo.toml

/root/repo/target/debug/deps/libablation_schedule-702690704595e1dc.rmeta: crates/bench/benches/ablation_schedule.rs Cargo.toml

crates/bench/benches/ablation_schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
