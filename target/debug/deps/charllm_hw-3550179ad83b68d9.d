/root/repo/target/debug/deps/charllm_hw-3550179ad83b68d9.d: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs

/root/repo/target/debug/deps/libcharllm_hw-3550179ad83b68d9.rlib: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs

/root/repo/target/debug/deps/libcharllm_hw-3550179ad83b68d9.rmeta: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs

crates/hw/src/lib.rs:
crates/hw/src/airflow.rs:
crates/hw/src/cluster.rs:
crates/hw/src/error.rs:
crates/hw/src/gpu.rs:
crates/hw/src/link.rs:
crates/hw/src/node.rs:
crates/hw/src/presets.rs:
