/root/repo/target/debug/deps/end_to_end-eb6b96bdae740553.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-eb6b96bdae740553: tests/end_to_end.rs

tests/end_to_end.rs:
