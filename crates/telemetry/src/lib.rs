//! Telemetry collection and reporting for CharLLM-PPT.
//!
//! The Rust stand-in for the paper's Zeus + NVML/AMD-SMI pipeline: sampled
//! per-GPU time series (power, temperature, clock, utilization, PCIe
//! traffic), aggregation into the per-configuration summary metrics the
//! figures plot, row-normalized heatmaps (Figs. 5, 17, 18), and CSV export
//! matching the artifact's output format.
//!
//! The [`spans`] / [`phase`] / [`chrome_trace`] modules form the execution
//! tracing half (the Chakra-trace analogue): per-rank span streams recorded
//! through the simulator's observer hooks, folded into per-phase wall-time
//! and energy attributions, and exported as Perfetto-loadable JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod chrome_trace;
pub mod csv;
pub mod heatmap;
pub mod metrics;
pub mod phase;
pub mod spans;
pub mod store;
pub mod timeseries;

pub use aggregate::SeriesSummary;
pub use heatmap::Heatmap;
pub use metrics::{
    Counter, Gauge, Histogram, MetricId, MetricKind, MetricValue, MetricsHub, MetricsShard,
    MetricsSnapshot, StageTimer, StageTiming, StageTimings,
};
pub use phase::{Phase, PhaseBreakdown, Profile, SpanTotal};
pub use spans::{FaultSpan, FlowSpan, PowerTick, Span, SpanKind, SpanRecorder};
pub use store::{GpuSample, TelemetryStore};
pub use timeseries::TimeSeries;
