//! Engine hot-path benchmark: event-driven `Simulator` vs the scan-based
//! `ReferenceSimulator` on an 8-node, 10-iteration GPT-3 13B workload.
//!
//! The two engines produce byte-identical `SimResult`s (enforced by
//! `tests/engine_golden.rs`), so this measures pure scheduler overhead:
//! plan caching, incremental link loads, and waiter wake-lists versus
//! per-event global recomputation. Also times the observer hook sites:
//! `NoopObserver` (must be free — `tests/observability.rs` holds the delta
//! under 2%), a full `SpanRecorder` profiling run, and an enabled
//! `MetricsHub` shard attached via `with_metrics` (gauges publish only at
//! control boundaries, so the delta must also sit within noise). Emits a
//! `BENCH_sim_engine.json` record (wall-clock per run, events/s, speedup,
//! observer + metrics deltas) for perf trajectory tracking.
//!
//! Sections — `micro`, `scale_512`, `scale_4096_faults`, `scale_16k` — can
//! be run individually via the `CHARLLM_BENCH_SECTION` env allowlist
//! (comma-separated; unset runs everything). The `scale_512` section gates
//! its heap rate against the committed repo-root `BENCH_sim_engine.json`
//! and exits nonzero on a >15% regression, so `ci.sh` smokes just that
//! section as a perf gate. Only a full run rewrites the JSON record.

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, Criterion};

use charllm_bench::save_json;
use charllm_hw::{presets, Cluster};
use charllm_models::{presets as models, TrainJob};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::fold::{self, FoldOptions};
use charllm_sim::reference::ReferenceSimulator;
use charllm_sim::{EngineStats, NoopObserver, SimConfig, SimResult, Simulator};
use charllm_telemetry::{MetricsHub, SpanRecorder};
use charllm_trace::lower::{lower_train, lower_train_folded, DeviceHints};
use charllm_trace::ExecutionTrace;

const ITERATIONS: usize = 10;

/// Median of a small sample (sorts in place; odd lengths only here).
fn median(rounds: &mut [f64]) -> f64 {
    rounds.sort_by(f64::total_cmp);
    rounds[rounds.len() / 2]
}

fn workload(cluster: &Cluster) -> ExecutionTrace {
    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(64);
    let spec = ParallelismSpec::infer_dp(4, 8, 1, cluster.num_gpus(), false).unwrap();
    let partition = StagePartition::even(40, 8).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
        .unwrap()
        .trace
}

fn config() -> SimConfig {
    let mut cfg = SimConfig::fast();
    cfg.iterations = ITERATIONS;
    cfg.warmup_iterations = 1;
    cfg
}

fn run_new(
    cluster: &Cluster,
    placement: &Placement,
    trace: &ExecutionTrace,
) -> (SimResult, EngineStats) {
    Simulator::new(cluster, placement, trace, config())
        .unwrap()
        .run_stats()
        .unwrap()
}

fn run_reference(cluster: &Cluster, placement: &Placement, trace: &ExecutionTrace) -> SimResult {
    ReferenceSimulator::new(cluster, placement, trace, config())
        .unwrap()
        .run()
        .unwrap()
}

fn run_noop(cluster: &Cluster, placement: &Placement, trace: &ExecutionTrace) -> SimResult {
    Simulator::with_observer(cluster, placement, trace, config(), NoopObserver)
        .unwrap()
        .run()
        .unwrap()
}

fn run_metered(
    cluster: &Cluster,
    placement: &Placement,
    trace: &ExecutionTrace,
    hub: &Arc<MetricsHub>,
) -> SimResult {
    Simulator::new(cluster, placement, trace, config())
        .unwrap()
        .with_metrics(&hub.shard(0))
        .run()
        .unwrap()
}

fn run_recorded(
    cluster: &Cluster,
    placement: &Placement,
    trace: &ExecutionTrace,
) -> (SimResult, SpanRecorder) {
    let recorder = SpanRecorder::for_trace(trace, config().iterations);
    Simulator::with_observer(cluster, placement, trace, config(), recorder)
        .unwrap()
        .run_observed()
        .unwrap()
}

/// True when `name` is selected by the `CHARLLM_BENCH_SECTION` allowlist
/// (comma-separated; unset or empty selects every section). Lets CI smoke
/// a single section — e.g. `CHARLLM_BENCH_SECTION=scale_512` — without
/// paying for the whole suite.
fn section_enabled(name: &str) -> bool {
    match std::env::var("CHARLLM_BENCH_SECTION") {
        Ok(v) if !v.trim().is_empty() => v.split(',').any(|s| s.trim() == name),
        _ => true,
    }
}

/// Gate against the committed baseline: the 512-GPU heap rate must stay
/// within 15% of `BENCH_sim_engine.json` at the repo root. Exits nonzero
/// on regression so `ci.sh` can smoke this section as a perf gate.
fn check_512_regression(heap_events_per_s: f64) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim_engine.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!(
            "scale_512 regression gate: no committed baseline at {} (skipped)",
            path.display()
        );
        return;
    };
    let committed: serde_json::Value =
        serde_json::from_str(&text).expect("committed baseline parses");
    let Some(base) = committed
        .get("scale_512gpu")
        .and_then(|v| v.get("heap_events_per_s"))
        .and_then(serde_json::Value::as_f64)
    else {
        println!("scale_512 regression gate: committed baseline has no heap rate (skipped)");
        return;
    };
    let floor = 0.85 * base;
    if heap_events_per_s < floor {
        eprintln!(
            "FAIL: 512-GPU heap rate {heap_events_per_s:.0} events/s regressed more than 15% \
             below the committed {base:.0} events/s (floor {floor:.0})"
        );
        std::process::exit(1);
    }
    println!(
        "scale_512 regression gate: {heap_events_per_s:.0} events/s vs committed {base:.0} \
         (floor {floor:.0}): OK"
    );
}

struct MicroOut {
    gpus: usize,
    stats: EngineStats,
    new_wall_s: f64,
    ref_wall_s: f64,
    plain_wall_s: f64,
    noop_overhead: f64,
    metered_overhead: f64,
    recorder_overhead: f64,
    num_spans: usize,
}

struct Scale512Out {
    scan_wall_s: f64,
    heap_wall_s: f64,
    heap_stats: EngineStats,
}

/// 64-GPU head-to-head vs the reference scan plus observer hook costs.
fn micro_section() -> MicroOut {
    let cluster = presets::hgx_h200_with_nodes(8);
    let trace = workload(&cluster);
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    println!(
        "workload: gpt3_13b tp4 pp8 on {} GPUs / 8 nodes, {ITERATIONS} iterations",
        cluster.num_gpus()
    );

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("sim_engine_hotpath");
    group.sample_size(3);
    group.bench_function("event_driven", |b| {
        b.iter(|| run_new(&cluster, &placement, black_box(&trace)))
    });
    group.bench_function("reference_scan", |b| {
        b.iter(|| run_reference(&cluster, &placement, black_box(&trace)))
    });
    group.finish();

    // Single timed head-to-head for the recorded baseline. Both engines
    // walk the identical event sequence, so the event count from the
    // event-driven engine's stats applies to both.
    let t0 = Instant::now();
    let (result_new, stats) = run_new(&cluster, &placement, &trace);
    let new_wall_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let result_ref = run_reference(&cluster, &placement, &trace);
    let ref_wall_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        serde_json::to_string(&result_new).unwrap(),
        serde_json::to_string(&result_ref).unwrap(),
        "engines diverged on the benchmark workload"
    );

    // Observer hook-site cost: NoopObserver must be indistinguishable from
    // the plain run — `Simulator::new` *is* `with_observer(NoopObserver)`,
    // the same monomorphization, so any measured delta is scheduler noise.
    // SpanRecorder pays for real span/flow/tick recording. Two untimed
    // warmup rounds (page/branch-predictor/allocator state), then
    // median-of-5 over *paired per-round ratios*: each round times plain
    // and noop back to back — alternating which goes first, since the
    // second run of a pair sees systematically different cache/allocator/
    // clock state — so ambient load drift and position bias cancel within
    // the pairs, and the median discards outlier rounds. The noop delta is
    // floored at zero because the code paths are identical by
    // construction — a negative reading is measurement noise, not a
    // speedup.
    // The live metrics hub rides the same protocol: gauges publish only at
    // control boundaries, never per event, so an enabled shard must also
    // sit within noise. Its overhead is *not* floored — the publish sites
    // are real code, so the signed reading is the honest one. The metered
    // run's result must stay byte-identical to the plain run.
    let hub = MetricsHub::new(1);
    for _ in 0..2 {
        black_box(run_new(&cluster, &placement, &trace));
        black_box(run_noop(&cluster, &placement, &trace));
        black_box(run_metered(&cluster, &placement, &trace, &hub));
    }
    let metered_result = run_metered(&cluster, &placement, &trace, &hub);
    assert_eq!(
        serde_json::to_string(&result_new).unwrap(),
        serde_json::to_string(&metered_result).unwrap(),
        "metrics hub changed the engine's output"
    );
    let mut plain_rounds = Vec::new();
    let mut noop_ratios = Vec::new();
    let mut metered_ratios = Vec::new();
    let mut recorded_ratios = Vec::new();
    let mut num_spans = 0;
    for round in 0..5 {
        let plain_s;
        let noop_s;
        if round % 2 == 0 {
            let t = Instant::now();
            black_box(run_new(&cluster, &placement, &trace));
            plain_s = t.elapsed().as_secs_f64();
            let t = Instant::now();
            black_box(run_noop(&cluster, &placement, &trace));
            noop_s = t.elapsed().as_secs_f64();
        } else {
            let t = Instant::now();
            black_box(run_noop(&cluster, &placement, &trace));
            noop_s = t.elapsed().as_secs_f64();
            let t = Instant::now();
            black_box(run_new(&cluster, &placement, &trace));
            plain_s = t.elapsed().as_secs_f64();
        }
        plain_rounds.push(plain_s);
        noop_ratios.push(noop_s / plain_s);
        let t = Instant::now();
        black_box(run_metered(&cluster, &placement, &trace, &hub));
        metered_ratios.push(t.elapsed().as_secs_f64() / plain_s);
        if round < 3 {
            let t = Instant::now();
            let (_, recorder) = run_recorded(&cluster, &placement, &trace);
            recorded_ratios.push(t.elapsed().as_secs_f64() / plain_s);
            num_spans = recorder.num_spans();
        }
    }
    let plain_wall_s = median(&mut plain_rounds);
    let noop_overhead = (median(&mut noop_ratios) - 1.0).max(0.0);
    let metered_overhead = median(&mut metered_ratios) - 1.0;
    let recorder_overhead = median(&mut recorded_ratios) - 1.0;

    println!(
        "events {} | event-driven {:.3}s ({:.0} events/s) | reference {:.3}s ({:.0} events/s) | speedup {:.2}x",
        stats.events,
        new_wall_s,
        stats.events as f64 / new_wall_s,
        ref_wall_s,
        stats.events as f64 / ref_wall_s,
        ref_wall_s / new_wall_s,
    );
    println!(
        "observer: noop {:+.2}% | metrics hub {:+.2}% | span recorder {:+.2}% ({} spans)",
        noop_overhead * 100.0,
        metered_overhead * 100.0,
        recorder_overhead * 100.0,
        num_spans
    );
    MicroOut {
        gpus: cluster.num_gpus(),
        stats,
        new_wall_s,
        ref_wall_s,
        plain_wall_s,
        noop_overhead,
        metered_overhead,
        recorder_overhead,
        num_spans,
    }
}

/// Unfolded 512-GPU scan-vs-heap head-to-head, then the perf gate against
/// the committed baseline.
fn scale_512_section() -> Scale512Out {
    // Scale head-to-head: a 64-node (512-GPU, dp16) replay whose live set
    // (~8x the flows) sits above the scheduler's heap threshold, so the
    // indexed completion heap engages. Forcing the threshold to usize::MAX
    // pins the same workload to the linear scan — the delta is the heap's
    // win region, and its stats prove the counters wire through.
    let big_cluster = presets::hgx_h200_with_nodes(64);
    let big_trace = {
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(512);
        let spec = ParallelismSpec::infer_dp(4, 8, 1, big_cluster.num_gpus(), false).unwrap();
        let partition = StagePartition::even(40, 8).unwrap();
        let hints = DeviceHints::for_spec(big_cluster.gpu());
        lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
            .unwrap()
            .trace
    };
    let big_placement = Placement::identity(&big_cluster, big_trace.world()).unwrap();
    let big_config = |threshold: usize| {
        let mut cfg = config();
        cfg.iterations = 2;
        cfg.warmup_iterations = 1;
        cfg.sched_heap_threshold = threshold;
        cfg
    };
    let mut scan_wall_s = f64::INFINITY;
    let mut heap_wall_s = f64::INFINITY;
    let mut heap_stats = None;
    let mut scan_result = None;
    let mut heap_result = None;
    for _ in 0..3 {
        let t = Instant::now();
        let (res, _) = Simulator::new(
            &big_cluster,
            &big_placement,
            &big_trace,
            big_config(usize::MAX),
        )
        .unwrap()
        .run_stats()
        .unwrap();
        scan_wall_s = scan_wall_s.min(t.elapsed().as_secs_f64());
        scan_result = Some(res);
        let t = Instant::now();
        let (res, stats) = Simulator::new(
            &big_cluster,
            &big_placement,
            &big_trace,
            big_config(SimConfig::default().sched_heap_threshold),
        )
        .unwrap()
        .run_stats()
        .unwrap();
        heap_wall_s = heap_wall_s.min(t.elapsed().as_secs_f64());
        heap_stats = Some(stats);
        heap_result = Some(res);
    }
    let heap_stats = heap_stats.unwrap();
    assert_eq!(
        serde_json::to_string(&scan_result).unwrap(),
        serde_json::to_string(&heap_result).unwrap(),
        "scan and heap schedulers diverged on the scale workload"
    );
    assert!(
        heap_stats.heap_pops > 0,
        "heap never engaged on the scale workload (live set below threshold?)"
    );
    println!(
        "scale ({} GPUs, {} events, peak live {}): scan {:.3}s ({:.0} events/s) | heap {:.3}s ({:.0} events/s) | heap/scan {:.2}x",
        big_cluster.num_gpus(),
        heap_stats.events,
        heap_stats.peak_live,
        scan_wall_s,
        heap_stats.events as f64 / scan_wall_s,
        heap_wall_s,
        heap_stats.events as f64 / heap_wall_s,
        scan_wall_s / heap_wall_s,
    );
    check_512_regression(heap_stats.events as f64 / heap_wall_s);
    Scale512Out {
        scan_wall_s,
        heap_wall_s,
        heap_stats,
    }
}

struct Scale16kOut {
    gpus: usize,
    multiplicity: u32,
    iterations: usize,
    step_time_s: f64,
    tokens_per_s: f64,
    wall_s: f64,
    stats: EngineStats,
}

/// Symmetry-folded 16k-GPU run; `heap_events_per_s` (when the 512-GPU
/// section also ran) anchors the events/s-equivalent comparison.
fn scale_16k_section(heap_events_per_s: Option<f64>) -> Scale16kOut {
    // Symmetry-folded 16k-GPU run: GPT-3 175B at tp8·pp16·dp128 on a
    // two-tier rail-optimized SuperPod (2048 HGX nodes). The folded engine
    // steps only the dp == 0 replica (128 ranks / 16 nodes) and expands
    // the results; events/s-equivalent credits each scheduler round with
    // the replica multiplicity it stands in for, making it comparable to
    // the unfolded 512-GPU heap rate above.
    let pod = presets::hgx_h100_superpod(2048, 8);
    let pod_job = TrainJob::pretrain(models::gpt3_175b()).with_global_batch(1024);
    let pod_spec = ParallelismSpec::infer_dp(8, 16, 1, pod.num_gpus(), false).unwrap();
    let pod_partition = StagePartition::even(pod_job.arch.num_layers, pod_spec.pp).unwrap();
    let pod_hints = DeviceHints::for_spec(pod.gpu());
    let pod_folded = lower_train_folded(
        &pod_job,
        &pod_spec,
        PipelineSchedule::OneFOneB,
        &pod_partition,
        &pod_hints,
    )
    .unwrap();
    let pod_placement = Placement::identity(&pod, pod_spec.world()).unwrap();
    let pod_cfg = {
        let mut cfg = SimConfig::fast();
        cfg.iterations = 5;
        cfg.warmup_iterations = 1;
        cfg.uniform_variability = true;
        cfg
    };
    let fold_opts = FoldOptions {
        expand_telemetry: false,
        ..FoldOptions::default()
    };
    let t = Instant::now();
    let (pod_result, pod_stats) = fold::run_folded(
        &pod,
        &pod_placement,
        &pod_folded,
        &pod_spec,
        pod_cfg,
        None,
        &fold_opts,
    )
    .unwrap();
    let pod_wall_s = t.elapsed().as_secs_f64();
    let pod_eq_per_s = pod_stats.events as f64 * f64::from(pod_folded.multiplicity) / pod_wall_s;
    let vs_heap = heap_events_per_s.map_or_else(
        || "n/a".to_string(),
        |h| format!("{:.1}x", pod_eq_per_s / h),
    );
    println!(
        "scale_16k ({} GPUs folded ×{}): wall {:.2}s | {} events ({:.2}M events/s-eq) | {vs_heap} over 512-GPU heap",
        pod.num_gpus(),
        pod_folded.multiplicity,
        pod_wall_s,
        pod_stats.events,
        pod_eq_per_s / 1e6,
    );
    Scale16kOut {
        gpus: pod.num_gpus(),
        multiplicity: pod_folded.multiplicity,
        iterations: pod_cfg.iterations,
        step_time_s: pod_result.step_time_s,
        tokens_per_s: pod_result.tokens_per_s,
        wall_s: pod_wall_s,
        stats: pod_stats,
    }
}

/// Unfolded 4096-GPU fault sweep: 512 HGX nodes, GPT-3 13B at
/// tp4·pp8·dp128. One clean point plus two fault scenarios — a fail-stop
/// (freeze/rebase outage path) and a degrade+straggler mix (sustained
/// dirty-flow re-rate churn). The arena-resident SoA core and lazy segment
/// accrual are what keep these unfolded runs tractable.
fn scale_4096_faults_section() -> serde_json::Value {
    use charllm_sim::FaultPlan;

    let cluster = presets::hgx_h200_with_nodes(512);
    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(512);
    let spec = ParallelismSpec::infer_dp(4, 8, 1, cluster.num_gpus(), false).unwrap();
    let partition = StagePartition::even(40, 8).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    let trace = lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
        .unwrap()
        .trace;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let scenarios: [(&str, FaultPlan); 3] = [
        ("clean", FaultPlan::none()),
        ("gpu_fail_stop", FaultPlan::none().gpu_fail_stop(11, 0.4)),
        (
            "degrade_plus_straggler",
            FaultPlan::none()
                .link_degrade(3, 0.1, 1.0, 0.3)
                .straggler(42, 0.05, 0.8, 1.6),
        ),
    ];
    let mut points = Vec::new();
    for (label, plan) in scenarios {
        let mut cfg = SimConfig::fast();
        cfg.iterations = 2;
        cfg.warmup_iterations = 1;
        let t = Instant::now();
        let (result, stats) = Simulator::new(&cluster, &placement, &trace, cfg)
            .unwrap()
            .with_faults(&plan)
            .unwrap()
            .run_stats()
            .unwrap();
        let wall_s = t.elapsed().as_secs_f64();
        println!(
            "scale_4096_faults[{label}]: wall {:.2}s | {} events ({:.0} events/s) | \
             goodput {:.2} Mtokens/s | downtime {:.2}s | {} restarts",
            wall_s,
            stats.events,
            stats.events as f64 / wall_s,
            result.goodput_tokens_per_s / 1e6,
            result.fault_downtime_s,
            result.restarts,
        );
        points.push(serde_json::json!({
            "scenario": label,
            "wall_s": wall_s,
            "events": stats.events,
            "events_per_s": stats.events as f64 / wall_s,
            "goodput_tokens_per_s": result.goodput_tokens_per_s,
            "fault_downtime_s": result.fault_downtime_s,
            "restarts": result.restarts,
            "engine_stats": stats,
        }));
    }
    serde_json::json!({
        "workload": "gpt3_13b_tp4_pp8_dp128_512node",
        "gpus": cluster.num_gpus(),
        "iterations": 2,
        "points": points,
    })
}

fn main() {
    let micro = section_enabled("micro").then(micro_section);
    let s512 = section_enabled("scale_512").then(scale_512_section);
    let s4096 = section_enabled("scale_4096_faults").then(scale_4096_faults_section);
    let heap_rate = s512
        .as_ref()
        .map(|s| s.heap_stats.events as f64 / s.heap_wall_s);
    let s16k = section_enabled("scale_16k").then(|| scale_16k_section(heap_rate));

    // Only a full run rewrites the record: a partial section run would
    // leave stale numbers under the untouched keys.
    let (Some(micro), Some(s512), Some(s4096), Some(s16k)) = (micro, s512, s4096, s16k) else {
        println!("CHARLLM_BENCH_SECTION set: partial run, BENCH_sim_engine.json not rewritten");
        return;
    };
    let heap_events_per_s = s512.heap_stats.events as f64 / s512.heap_wall_s;
    let pod_eq_per_s = s16k.stats.events as f64 * f64::from(s16k.multiplicity) / s16k.wall_s;
    let record = serde_json::json!({
        "workload": "gpt3_13b_tp4_pp8_dp2_8node",
        "gpus": micro.gpus,
        "iterations": ITERATIONS,
        "events": micro.stats.events,
        "event_driven": {
            "wall_s": micro.new_wall_s,
            "events_per_s": micro.stats.events as f64 / micro.new_wall_s,
        },
        "reference_scan": {
            "wall_s": micro.ref_wall_s,
            "events_per_s": micro.stats.events as f64 / micro.ref_wall_s,
        },
        "speedup": micro.ref_wall_s / micro.new_wall_s,
        "observer": {
            "plain_wall_s": micro.plain_wall_s,
            "noop_wall_s": micro.plain_wall_s * (1.0 + micro.noop_overhead),
            "noop_overhead": micro.noop_overhead,
            "metrics_hub_wall_s": micro.plain_wall_s * (1.0 + micro.metered_overhead),
            "metrics_hub_overhead": micro.metered_overhead,
            "span_recorder_wall_s": micro.plain_wall_s * (1.0 + micro.recorder_overhead),
            "span_recorder_overhead": micro.recorder_overhead,
            "spans_recorded": micro.num_spans,
        },
        "engine_stats": micro.stats,
        "scale_512gpu": {
            "events": s512.heap_stats.events,
            "scan_wall_s": s512.scan_wall_s,
            "scan_events_per_s": s512.heap_stats.events as f64 / s512.scan_wall_s,
            "heap_wall_s": s512.heap_wall_s,
            "heap_events_per_s": heap_events_per_s,
            "heap_over_scan": s512.scan_wall_s / s512.heap_wall_s,
            "heap_stats": s512.heap_stats,
        },
        "scale_4096gpu_faults": s4096,
        "scale_16k": {
            "workload": "gpt3_175b_tp8_pp16_dp128_superpod_2048node_8rail",
            "gpus": s16k.gpus,
            "fold_multiplicity": s16k.multiplicity,
            "iterations": s16k.iterations,
            "step_time_s": s16k.step_time_s,
            "tokens_per_s": s16k.tokens_per_s,
            "wall_s": s16k.wall_s,
            "events": s16k.stats.events,
            "events_per_s": s16k.stats.events as f64 / s16k.wall_s,
            "events_per_s_equivalent": pod_eq_per_s,
            "speedup_vs_512gpu_heap": pod_eq_per_s / heap_events_per_s,
            "engine_stats": s16k.stats,
        },
    });
    save_json("BENCH_sim_engine", &record);
}
