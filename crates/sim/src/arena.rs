//! Structure-of-arrays arena for in-flight flow state.
//!
//! The unfolded engine used to keep live flows in a dense
//! `Vec<FlowState>` of ~280-byte structs, compacted with `swap_remove` on
//! every retirement. That layout drags five cache lines per flow through
//! the two hot loops (re-rate and advance) even though each loop touches
//! only a couple of fields, and the compaction forces back-pointer fixups
//! in every link membership list and calendar entry whenever an unrelated
//! flow retires.
//!
//! [`FlowArena`] flips the layout: one parallel array per field, indexed by
//! a **stable slot**. Slots are recycled through a LIFO free list and each
//! slot carries a generation stamp that is bumped on free, so any stale
//! reference (most importantly: lazily-deleted calendar entries keyed by
//! `(slot, gen)`) can be detected and dropped instead of resurrecting a
//! dead flow's successor. At steady state the flow lifecycle performs no
//! allocation: launching pops a slot, retiring pushes it back.
//!
//! Iteration order is owned by the engine (a separate dense `flow_order`
//! list replicating the reference simulator's `swap_remove` order), not by
//! the arena — the arena only owns storage and slot lifetime.

/// Maximum links in a single flow route (fixed-capacity inline arrays).
pub const MAX_ROUTE_LINKS: usize = 8;

/// Sentinel for "no calendar location" (mirrors the engine's `LOC_NONE`).
const LOC_NONE: u64 = u64::MAX;

/// Structure-of-arrays storage for live flows, indexed by stable slot.
///
/// All field vectors share the same length (`num_slots`). The engine
/// accesses fields directly so disjoint borrows stay visible to the borrow
/// checker (the parallel re-rate workers read `pf`/`remaining` while the
/// caller holds other fields mutably).
#[derive(Debug, Default)]
pub struct FlowArena {
    /// Work remaining, in route-work units (bytes × multiplier).
    pub remaining: Vec<f64>,
    /// Last computed bottleneck rate (units/s).
    pub rate: Vec<f64>,
    /// Time the flow's traffic accounting was last brought current
    /// (segment start for lazy accrual).
    pub acc_since: Vec<f64>,
    /// Movement banked at superseded rates since the last traffic flush,
    /// in route-work units (see `crate::accrual::bank_flow_segment`).
    pub moved_acc: Vec<f64>,
    /// `load_epoch` at which `rate` was computed (staleness check).
    pub rate_epoch: Vec<u64>,
    /// Predicted completion time key currently in the calendar.
    pub heap_key: Vec<f64>,
    /// Packed calendar location of this flow's entry (`LOC_NONE` if absent).
    pub cal_loc: Vec<u64>,
    /// Position of this flow in each route link's membership list.
    pub link_pos: Vec<[u32; MAX_ROUTE_LINKS]>,
    /// Owning collective slab index.
    pub coll: Vec<u32>,
    /// Iteration the owning collective belongs to.
    pub iteration: Vec<u32>,
    /// Whether traffic from this flow counts toward measured statistics.
    pub measured: Vec<bool>,
    /// Index of this flow's interned plan entry (`PlanFlowRef`).
    pub pf: Vec<u32>,
    /// Generation stamp; bumped when the slot is freed.
    pub gen: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    slot_reuses: u64,
}

impl FlowArena {
    /// An empty arena.
    pub fn new() -> Self {
        FlowArena::default()
    }

    /// Allocate a slot, reusing a freed one when available. Field values
    /// are stale until the caller writes them; `gen` is already advanced
    /// past every generation the slot has previously held.
    pub fn alloc(&mut self) -> u32 {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            self.slot_reuses += 1;
            return slot;
        }
        let slot = u32::try_from(self.remaining.len()).expect("flow arena exceeds u32 slots");
        self.remaining.push(0.0);
        self.rate.push(0.0);
        self.acc_since.push(0.0);
        self.moved_acc.push(0.0);
        self.rate_epoch.push(0);
        self.heap_key.push(f64::INFINITY);
        self.cal_loc.push(LOC_NONE);
        self.link_pos.push([0; MAX_ROUTE_LINKS]);
        self.coll.push(0);
        self.iteration.push(0);
        self.measured.push(false);
        self.pf.push(0);
        self.gen.push(0);
        slot
    }

    /// Release a slot back to the free list, invalidating its generation.
    /// Stale `(slot, gen)` references held elsewhere (calendar entries)
    /// will no longer match [`FlowArena::gen`].
    pub fn free(&mut self, slot: u32) {
        self.gen[slot as usize] = self.gen[slot as usize].wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
    }

    /// Current generation of `slot`.
    #[inline]
    pub fn generation(&self, slot: u32) -> u32 {
        self.gen[slot as usize]
    }

    /// Number of live (allocated) flows.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever created (live + free).
    pub fn num_slots(&self) -> usize {
        self.remaining.len()
    }

    /// How many allocations were served from the free list.
    pub fn slot_reuses(&self) -> u64 {
        self.slot_reuses
    }

    /// Drop every slot and stamp. Used when the engine rebuilds from
    /// scratch; counters are preserved.
    pub fn clear(&mut self) {
        self.remaining.clear();
        self.rate.clear();
        self.acc_since.clear();
        self.moved_acc.clear();
        self.rate_epoch.clear();
        self.heap_key.clear();
        self.cal_loc.clear();
        self.link_pos.clear();
        self.coll.clear();
        self.iteration.clear();
        self.measured.clear();
        self.pf.clear();
        self.gen.clear();
        self.free.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_grows_then_reuses_lifo() {
        let mut fa = FlowArena::new();
        let a = fa.alloc();
        let b = fa.alloc();
        assert_eq!((a, b), (0, 1));
        assert_eq!(fa.live(), 2);
        fa.free(a);
        let c = fa.alloc();
        assert_eq!(c, a, "freed slot is recycled");
        assert_eq!(fa.slot_reuses(), 1);
        assert_eq!(fa.num_slots(), 2);
    }

    #[test]
    fn generation_advances_on_every_free() {
        let mut fa = FlowArena::new();
        let s = fa.alloc();
        let g0 = fa.generation(s);
        fa.free(s);
        assert_ne!(fa.generation(s), g0);
        let s2 = fa.alloc();
        assert_eq!(s2, s);
        let g1 = fa.generation(s2);
        assert_ne!(g1, g0, "stale (slot, gen) refs never match the reused slot");
        fa.free(s2);
        assert_ne!(fa.generation(s), g1);
    }
}
