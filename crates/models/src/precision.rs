//! Numeric precision of parameters and activations.

use serde::{Deserialize, Serialize};

/// Training numeric format. The paper trains all workloads in FP16 or BF16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Precision {
    /// IEEE half precision.
    Fp16,
    /// bfloat16 (default for the evaluated frameworks).
    #[default]
    Bf16,
    /// IEEE single precision (used for optimizer master state).
    Fp32,
}

impl Precision {
    /// Bytes per element.
    ///
    /// ```
    /// use charllm_models::Precision;
    /// assert_eq!(Precision::Bf16.bytes(), 2);
    /// assert_eq!(Precision::Fp32.bytes(), 4);
    /// ```
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Fp16 | Precision::Bf16 => 2,
            Precision::Fp32 => 4,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Fp16 => write!(f, "fp16"),
            Precision::Bf16 => write!(f, "bf16"),
            Precision::Fp32 => write!(f, "fp32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_formats_are_two_bytes() {
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Bf16.bytes(), 2);
    }

    #[test]
    fn default_is_bf16() {
        assert_eq!(Precision::default(), Precision::Bf16);
    }
}
