//! Device placement: mapping ranks onto physical GPUs.

use serde::{Deserialize, Serialize};

use charllm_hw::{Cluster, GpuId};

use crate::error::ParallelError;

/// A mapping from rank to physical GPU.
///
/// The default ("consecutive device IDs", as the paper puts it) maps rank
/// `r` to global GPU `r`, which combined with the TP-fastest rank order
/// keeps TP groups node-local. The §6 thermal-aware strategies construct
/// non-identity placements via [`crate::thermal_aware`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    gpu_of_rank: Vec<GpuId>,
}

impl Placement {
    /// The identity placement of `world` ranks onto the first `world` GPUs.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::InvalidPlacement`] when the cluster has
    /// fewer than `world` GPUs.
    pub fn identity(cluster: &Cluster, world: usize) -> Result<Self, ParallelError> {
        if world > cluster.num_gpus() {
            return Err(ParallelError::InvalidPlacement(format!(
                "world size {world} exceeds cluster of {} gpus",
                cluster.num_gpus()
            )));
        }
        Ok(Placement {
            gpu_of_rank: (0..world as u32).map(GpuId).collect(),
        })
    }

    /// Build from an explicit rank → GPU table.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::InvalidPlacement`] when a GPU appears twice
    /// or lies outside the cluster.
    pub fn from_table(cluster: &Cluster, gpu_of_rank: Vec<GpuId>) -> Result<Self, ParallelError> {
        let mut seen = vec![false; cluster.num_gpus()];
        for &g in &gpu_of_rank {
            if g.index() >= cluster.num_gpus() {
                return Err(ParallelError::InvalidPlacement(format!(
                    "{g} outside cluster of {} gpus",
                    cluster.num_gpus()
                )));
            }
            if seen[g.index()] {
                return Err(ParallelError::InvalidPlacement(format!(
                    "{g} assigned twice"
                )));
            }
            seen[g.index()] = true;
        }
        Ok(Placement { gpu_of_rank })
    }

    /// Number of placed ranks.
    pub fn world(&self) -> usize {
        self.gpu_of_rank.len()
    }

    /// The GPU hosting a rank.
    ///
    /// # Panics
    ///
    /// Panics if the rank is out of range.
    pub fn gpu(&self, rank: usize) -> GpuId {
        self.gpu_of_rank[rank]
    }

    /// The rank hosted on a GPU, if any.
    pub fn rank_on(&self, gpu: GpuId) -> Option<usize> {
        self.gpu_of_rank.iter().position(|&g| g == gpu)
    }

    /// Iterate `(rank, GpuId)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, GpuId)> + '_ {
        self.gpu_of_rank.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::presets;

    #[test]
    fn identity_maps_rank_to_same_index() {
        let c = presets::hgx_h200_cluster();
        let p = Placement::identity(&c, 32).unwrap();
        assert_eq!(p.gpu(7), GpuId(7));
        assert_eq!(p.rank_on(GpuId(31)), Some(31));
    }

    #[test]
    fn identity_rejects_oversubscription() {
        let c = presets::hgx_h200_cluster();
        assert!(Placement::identity(&c, 64).is_err());
    }

    #[test]
    fn partial_worlds_leave_gpus_idle() {
        let c = presets::hgx_h200_cluster();
        let p = Placement::identity(&c, 16).unwrap();
        assert_eq!(p.world(), 16);
        assert_eq!(p.rank_on(GpuId(20)), None);
    }

    #[test]
    fn duplicate_gpu_rejected() {
        let c = presets::hgx_h200_cluster();
        let err = Placement::from_table(&c, vec![GpuId(0), GpuId(0)]);
        assert!(err.is_err());
    }

    #[test]
    fn out_of_cluster_gpu_rejected() {
        let c = presets::hgx_h200_cluster();
        assert!(Placement::from_table(&c, vec![GpuId(99)]).is_err());
    }

    #[test]
    fn custom_table_roundtrips() {
        let c = presets::hgx_h200_cluster();
        let table = vec![GpuId(4), GpuId(0), GpuId(9)];
        let p = Placement::from_table(&c, table.clone()).unwrap();
        for (rank, gpu) in p.iter() {
            assert_eq!(gpu, table[rank]);
            assert_eq!(p.rank_on(gpu), Some(rank));
        }
    }

    #[test]
    fn default_placement_keeps_tp_groups_node_local() {
        // With TP->EP->DP->PP rank order and identity placement, a TP8 group
        // occupies exactly one 8-GPU node.
        use crate::mapping::RankGrid;
        use crate::spec::ParallelismSpec;
        let c = presets::hgx_h200_cluster();
        let g = RankGrid::new(ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap());
        let p = Placement::identity(&c, 32).unwrap();
        for rank in [0, 11, 25] {
            let group = g.tp_group(rank);
            let nodes: std::collections::HashSet<_> =
                group.iter().map(|&r| c.node_of(p.gpu(r))).collect();
            assert_eq!(nodes.len(), 1, "tp group of rank {rank} spans {nodes:?}");
        }
    }

    #[test]
    fn pp_groups_span_nodes_under_default_placement() {
        use crate::mapping::RankGrid;
        use crate::spec::ParallelismSpec;
        let c = presets::hgx_h200_cluster();
        let g = RankGrid::new(ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap());
        let p = Placement::identity(&c, 32).unwrap();
        let group = g.pp_group(0);
        let nodes: std::collections::HashSet<_> =
            group.iter().map(|&r| c.node_of(p.gpu(r))).collect();
        assert_eq!(
            nodes.len(),
            4,
            "each stage of TP8-PP4 lives on its own node"
        );
    }
}
