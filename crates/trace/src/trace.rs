//! The execution trace: per-rank step streams plus shared collectives.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use charllm_net::{ChunkingPolicy, CollectiveKind};

use crate::task::{CollectiveId, CollectiveInstance, ComputeKind, Step};

/// Metadata describing what one iteration of the trace represents.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable label (model + parallelism + optimizations).
    pub label: String,
    /// Tokens processed per traced iteration.
    pub tokens_per_iteration: u64,
    /// Whether compute–communication overlap is enabled (the simulator
    /// applies contention slowdown to concurrent compute).
    pub cc_overlap: bool,
}

/// A complete lowered workload iteration.
///
/// Serialization is a compact packed encoding rather than the derived
/// object-per-step tree: traces run to hundreds of thousands of steps, and
/// the persistent cache's restart win lives or dies on reload speed. Step
/// streams become token strings over a shared float table (step counts per
/// trace dwarf the distinct FLOP values), collectives a `;`-joined record
/// string. The packing must stay bit-exact: `f64` text uses `Display`'s
/// shortest-roundtrip form.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    steps: Vec<Vec<Step>>,
    collectives: Vec<CollectiveInstance>,
    meta: TraceMeta,
}

/// Intern table mapping distinct `f64`s to dense indices for the packed
/// trace encoding.
#[derive(Default)]
struct FloatTable {
    values: Vec<f64>,
    index: HashMap<u64, u32>,
}

impl FloatTable {
    fn intern(&mut self, v: f64) -> u32 {
        *self.index.entry(v.to_bits()).or_insert_with(|| {
            self.values.push(v);
            (self.values.len() - 1) as u32
        })
    }
}

fn compute_kind_code(kind: ComputeKind) -> u32 {
    match kind {
        ComputeKind::Gemm => 0,
        ComputeKind::Attention => 1,
        ComputeKind::MoeGemm => 2,
        ComputeKind::Router => 3,
        ComputeKind::Embedding => 4,
        ComputeKind::Recompute => 5,
        ComputeKind::Optimizer => 6,
    }
}

fn compute_kind_of(code: u32) -> Result<ComputeKind, serde::Error> {
    Ok(match code {
        0 => ComputeKind::Gemm,
        1 => ComputeKind::Attention,
        2 => ComputeKind::MoeGemm,
        3 => ComputeKind::Router,
        4 => ComputeKind::Embedding,
        5 => ComputeKind::Recompute,
        6 => ComputeKind::Optimizer,
        _ => return Err(serde::Error::custom(format!("bad compute kind {code}"))),
    })
}

fn collective_kind_code(kind: CollectiveKind) -> u32 {
    match kind {
        CollectiveKind::AllReduce => 0,
        CollectiveKind::AllGather => 1,
        CollectiveKind::ReduceScatter => 2,
        CollectiveKind::AllToAll => 3,
        CollectiveKind::Broadcast => 4,
        CollectiveKind::SendRecv => 5,
    }
}

fn collective_kind_of(code: u32) -> Result<CollectiveKind, serde::Error> {
    Ok(match code {
        0 => CollectiveKind::AllReduce,
        1 => CollectiveKind::AllGather,
        2 => CollectiveKind::ReduceScatter,
        3 => CollectiveKind::AllToAll,
        4 => CollectiveKind::Broadcast,
        5 => CollectiveKind::SendRecv,
        _ => return Err(serde::Error::custom(format!("bad collective kind {code}"))),
    })
}

/// Pack one rank's step stream as `tag arg` token pairs: `c<kind> <fidx>`
/// for compute, `s <coll>` / `w <coll>` for collective start/wait.
fn pack_steps(steps: &[Step], floats: &mut FloatTable) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, step) in steps.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match step {
            Step::Compute { kind, flops } => {
                let _ = write!(
                    out,
                    "c{} {}",
                    compute_kind_code(*kind),
                    floats.intern(*flops)
                );
            }
            Step::CollStart { coll } => {
                let _ = write!(out, "s {}", coll.0);
            }
            Step::CollWait { coll } => {
                let _ = write!(out, "w {}", coll.0);
            }
        }
    }
    out
}

fn unpack_steps(text: &str, floats: &[f64]) -> Result<Vec<Step>, serde::Error> {
    let mut steps = Vec::new();
    let mut toks = text.split_ascii_whitespace();
    while let Some(tag) = toks.next() {
        let arg: u32 = toks
            .next()
            .ok_or_else(|| serde::Error::custom("truncated step stream"))?
            .parse()
            .map_err(|_| serde::Error::custom("bad step argument"))?;
        let step = match tag.as_bytes() {
            [b'c', code @ ..] => {
                let code: u32 = std::str::from_utf8(code)
                    .ok()
                    .and_then(|c| c.parse().ok())
                    .ok_or_else(|| serde::Error::custom("bad compute tag"))?;
                let flops = floats
                    .get(arg as usize)
                    .copied()
                    .ok_or_else(|| serde::Error::custom("float index out of range"))?;
                Step::Compute {
                    kind: compute_kind_of(code)?,
                    flops,
                }
            }
            b"s" => Step::CollStart {
                coll: CollectiveId(arg),
            },
            b"w" => Step::CollWait {
                coll: CollectiveId(arg),
            },
            _ => return Err(serde::Error::custom(format!("bad step tag {tag:?}"))),
        };
        steps.push(step);
    }
    Ok(steps)
}

/// Pack the collective table: per instance
/// `kind bytes eager chunked chunk_bytes glen group*glen`, instances
/// joined with `;`.
fn pack_collectives(collectives: &[CollectiveInstance]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, c) in collectives.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        let (chunked, chunk_bytes) = match c.chunking {
            ChunkingPolicy::Unchunked => (0u32, 0u64),
            ChunkingPolicy::Chunked { chunk_bytes } => (1, chunk_bytes),
        };
        let _ = write!(
            out,
            "{} {} {} {chunked} {chunk_bytes} {}",
            collective_kind_code(c.kind),
            c.bytes_per_rank,
            u32::from(c.eager_p2p),
            c.group.len()
        );
        for rank in &c.group {
            let _ = write!(out, " {rank}");
        }
    }
    out
}

fn unpack_collectives(text: &str) -> Result<Vec<CollectiveInstance>, serde::Error> {
    fn num<T: std::str::FromStr>(tok: Option<&str>) -> Result<T, serde::Error> {
        tok.ok_or_else(|| serde::Error::custom("truncated collective record"))?
            .parse()
            .map_err(|_| serde::Error::custom("bad collective token"))
    }
    if text.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for chunk in text.split(';') {
        let mut t = chunk.split_ascii_whitespace();
        let kind = collective_kind_of(num(t.next())?)?;
        let bytes_per_rank: u64 = num(t.next())?;
        let eager_p2p = match num::<u32>(t.next())? {
            0 => false,
            1 => true,
            other => {
                return Err(serde::Error::custom(format!("bad eager flag {other}")));
            }
        };
        let chunked: u32 = num(t.next())?;
        let chunk_bytes: u64 = num(t.next())?;
        let chunking = match chunked {
            0 => ChunkingPolicy::Unchunked,
            1 => ChunkingPolicy::Chunked { chunk_bytes },
            other => {
                return Err(serde::Error::custom(format!("bad chunking flag {other}")));
            }
        };
        let glen: usize = num(t.next())?;
        let mut group = Vec::with_capacity(glen);
        for _ in 0..glen {
            group.push(num(t.next())?);
        }
        if t.next().is_some() {
            return Err(serde::Error::custom("trailing tokens in collective record"));
        }
        out.push(CollectiveInstance {
            kind,
            bytes_per_rank,
            group,
            chunking,
            eager_p2p,
        });
    }
    Ok(out)
}

impl Serialize for ExecutionTrace {
    fn serialize_value(&self) -> serde::Value {
        let mut floats = FloatTable::default();
        let steps: Vec<serde::Value> = self
            .steps
            .iter()
            .map(|rank| serde::Value::String(pack_steps(rank, &mut floats)))
            .collect();
        let float_text = floats
            .values
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let mut map = serde::Map::new();
        map.insert("floats", serde::Value::String(float_text));
        map.insert("steps", serde::Value::Array(steps));
        map.insert(
            "colls",
            serde::Value::String(pack_collectives(&self.collectives)),
        );
        map.insert("meta", self.meta.serialize_value());
        serde::Value::Object(map)
    }
}

impl Deserialize for ExecutionTrace {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let floats = v
            .get("floats")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| serde::Error::custom("trace: missing float table"))?
            .split_ascii_whitespace()
            .map(|tok| {
                tok.parse::<f64>()
                    .map_err(|_| serde::Error::custom(format!("trace: bad float {tok:?}")))
            })
            .collect::<Result<Vec<f64>, serde::Error>>()?;
        let steps = v
            .get("steps")
            .and_then(serde::Value::as_array)
            .ok_or_else(|| serde::Error::custom("trace: missing step streams"))?
            .iter()
            .map(|rank| {
                let text = rank
                    .as_str()
                    .ok_or_else(|| serde::Error::custom("trace: bad step stream"))?;
                unpack_steps(text, &floats)
            })
            .collect::<Result<Vec<Vec<Step>>, serde::Error>>()?;
        let collectives = v
            .get("colls")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| serde::Error::custom("trace: missing collective table"))
            .and_then(unpack_collectives)?;
        let meta = v
            .get("meta")
            .ok_or_else(|| serde::Error::custom("trace: missing meta"))
            .and_then(TraceMeta::deserialize_value)?;
        Ok(ExecutionTrace {
            steps,
            collectives,
            meta,
        })
    }
}

impl ExecutionTrace {
    /// Assemble a trace (normally via [`crate::TraceBuilder`]).
    pub fn new(
        steps: Vec<Vec<Step>>,
        collectives: Vec<CollectiveInstance>,
        meta: TraceMeta,
    ) -> Self {
        ExecutionTrace {
            steps,
            collectives,
            meta,
        }
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.steps.len()
    }

    /// The step stream of one rank.
    pub fn steps(&self, rank: usize) -> &[Step] {
        &self.steps[rank]
    }

    /// All collective instances.
    pub fn collectives(&self) -> &[CollectiveInstance] {
        &self.collectives
    }

    /// One collective instance.
    pub fn collective(&self, id: CollectiveId) -> &CollectiveInstance {
        &self.collectives[id.index()]
    }

    /// Number of collective instances.
    pub fn num_collectives(&self) -> usize {
        self.collectives.len()
    }

    /// For each collective, how many `CollWait` steps reference it across
    /// all ranks in one iteration of the trace.
    ///
    /// The simulator uses this to retire per-iteration collective state as
    /// soon as every waiter has passed its wait: within one iteration each
    /// rank executes each of its steps exactly once, so once a collective
    /// instance is complete and `wait_counts()[c]` waits on it have been
    /// observed, no rank can ever consult that instance's state again.
    pub fn wait_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.collectives.len()];
        for steps in &self.steps {
            for step in steps {
                if let Step::CollWait { coll } = step {
                    if let Some(c) = counts.get_mut(coll.index()) {
                        *c += 1;
                    }
                }
            }
        }
        counts
    }

    /// Trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Total compute FLOPs across all ranks.
    pub fn total_flops(&self) -> f64 {
        self.steps
            .iter()
            .flatten()
            .map(|s| match s {
                Step::Compute { flops, .. } => *flops,
                _ => 0.0,
            })
            .sum()
    }

    /// Total collective payload bytes per rank summed over instances
    /// (useful for quick communication-volume comparisons).
    pub fn total_comm_bytes(&self) -> u64 {
        self.collectives
            .iter()
            .map(|c| c.bytes_per_rank * c.group.len() as u64)
            .sum()
    }

    /// Structural validation: every referenced collective exists, every
    /// waited collective is eventually started by someone who can start it,
    /// and every group member of a non-P2P collective arrives exactly once.
    ///
    /// Returns a list of problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut starts: HashMap<u32, Vec<usize>> = HashMap::new();
        for (rank, steps) in self.steps.iter().enumerate() {
            for step in steps {
                let id = match step {
                    Step::CollStart { coll } | Step::CollWait { coll } => *coll,
                    _ => continue,
                };
                if id.index() >= self.collectives.len() {
                    problems.push(format!("rank {rank} references missing collective {id:?}"));
                    continue;
                }
                if matches!(step, Step::CollStart { .. }) {
                    starts.entry(id.0).or_default().push(rank);
                }
                let inst = &self.collectives[id.index()];
                if !inst.group.contains(&rank) && !inst.eager_p2p {
                    problems.push(format!(
                        "rank {rank} participates in collective {id:?} but is not in its group"
                    ));
                }
            }
        }
        for (idx, inst) in self.collectives.iter().enumerate() {
            let arrived = starts.get(&(idx as u32)).cloned().unwrap_or_default();
            if inst.eager_p2p {
                if arrived.len() != 1 {
                    problems.push(format!(
                        "eager p2p collective {idx} has {} senders (expected 1)",
                        arrived.len()
                    ));
                }
            } else {
                let mut sorted = arrived.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted != {
                    let mut g = inst.group.clone();
                    g.sort_unstable();
                    g
                } {
                    problems.push(format!(
                        "collective {idx} ({:?}) group {:?} but arrivals {:?}",
                        inst.kind, inst.group, arrived
                    ));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CollKey, TraceBuilder};
    use crate::task::ComputeKind;
    use charllm_net::{ChunkingPolicy, CollectiveKind};

    #[test]
    fn totals() {
        let mut b = TraceBuilder::new(2);
        b.compute(0, ComputeKind::Gemm, 100.0);
        b.compute(1, ComputeKind::Attention, 50.0);
        let id = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            1000,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, id);
        b.blocking(1, id);
        let t = b.build(TraceMeta::default());
        assert_eq!(t.total_flops(), 150.0);
        assert_eq!(t.total_comm_bytes(), 2000);
        assert!(t.validate().is_empty(), "{:?}", t.validate());
    }

    #[test]
    fn wait_counts_tally_collwait_steps_per_collective() {
        let mut b = TraceBuilder::new(3);
        let ar = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            64,
            vec![0, 1, 2],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, ar);
        b.blocking(1, ar);
        b.blocking(2, ar);
        let p2p = b.collective(
            CollKey {
                site: "p2p",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::SendRecv,
            64,
            vec![0, 1],
            ChunkingPolicy::Unchunked,
            true,
        );
        b.start(0, p2p); // eager sender never waits
        b.wait(1, p2p);
        let t = b.build(TraceMeta::default());
        assert_eq!(t.num_collectives(), 2);
        assert_eq!(t.wait_counts(), vec![3, 1]);
    }

    #[test]
    fn validation_flags_missing_arrivals() {
        let mut b = TraceBuilder::new(2);
        let id = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            8,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, id); // rank 1 never arrives
        let t = b.build(TraceMeta::default());
        assert!(!t.validate().is_empty());
    }

    #[test]
    fn validation_accepts_eager_p2p_receiver_wait() {
        let mut b = TraceBuilder::new(2);
        let id = b.collective(
            CollKey {
                site: "p2p",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::SendRecv,
            8,
            vec![0, 1],
            ChunkingPolicy::Unchunked,
            true,
        );
        b.start(0, id); // sender
        b.wait(1, id); // receiver
        let t = b.build(TraceMeta::default());
        assert!(t.validate().is_empty(), "{:?}", t.validate());
    }

    #[test]
    fn validation_flags_two_senders_on_p2p() {
        let mut b = TraceBuilder::new(2);
        let id = b.collective(
            CollKey {
                site: "p2p",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::SendRecv,
            8,
            vec![0, 1],
            ChunkingPolicy::Unchunked,
            true,
        );
        b.start(0, id);
        b.start(1, id);
        let t = b.build(TraceMeta::default());
        assert!(!t.validate().is_empty());
    }
}
