//! Lowering logical collectives into concurrent flows on the topology.
//!
//! Ring algorithms follow NCCL: AllReduce moves `2·(n−1)/n` of the buffer
//! across every ring hop in `2(n−1)` pipelined phases; AllGather and
//! ReduceScatter move `(n−1)/n` in `n−1` phases. All-to-All is pairwise —
//! `n−1` *small* messages per rank (`bytes/n` each), which is exactly the
//! fine-grained pattern the paper blames for expert-parallel inefficiency.
//! SendRecv is a single point-to-point flow whose chunking policy decides
//! whether it saturates the path.

use serde::{Deserialize, Serialize};

use charllm_hw::{Cluster, GpuId, HwError};

use crate::chunking::ChunkingPolicy;
use crate::flow::Flow;

/// The collective operations emitted by the trace lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Ring AllReduce (gradient sync, TP layer reductions).
    AllReduce,
    /// Ring AllGather (ZeRO-1 parameter gather, FSDP unshard).
    AllGather,
    /// Ring ReduceScatter (ZeRO-1 / FSDP gradient reduction).
    ReduceScatter,
    /// Pairwise All-to-All (MoE token dispatch/combine).
    AllToAll,
    /// Root-to-group Broadcast.
    Broadcast,
    /// Point-to-point send/receive (pipeline activations).
    SendRecv,
}

impl std::fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CollectiveKind::AllReduce => "AllReduce",
            CollectiveKind::AllGather => "AllGather",
            CollectiveKind::ReduceScatter => "ReduceScatter",
            CollectiveKind::AllToAll => "AllToAll",
            CollectiveKind::Broadcast => "Broadcast",
            CollectiveKind::SendRecv => "SendRecv",
        };
        f.write_str(s)
    }
}

/// A lowered collective: the set of flows that must all complete.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectivePlan {
    /// The logical operation.
    pub kind: CollectiveKind,
    /// Concurrent flows implementing it.
    pub flows: Vec<Flow>,
    /// Per-rank buffer size the caller requested.
    pub bytes_per_rank: u64,
}

impl CollectivePlan {
    /// Total payload bytes moved across the fabric.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }

    /// Total wire messages.
    pub fn total_messages(&self) -> u64 {
        self.flows.iter().map(|f| f.num_messages).sum()
    }
}

/// Lower a collective over `gpus` (rank order) moving `bytes` per rank.
///
/// Single-member groups and zero-byte buffers lower to an empty plan.
///
/// # Errors
///
/// Propagates [`HwError::GpuOutOfRange`] when a GPU lies outside the
/// cluster.
pub fn lower_collective(
    kind: CollectiveKind,
    bytes: u64,
    gpus: &[GpuId],
    cluster: &Cluster,
    chunking: ChunkingPolicy,
) -> Result<CollectivePlan, HwError> {
    for &g in gpus {
        cluster.check_gpu(g)?;
    }
    let n = gpus.len();
    if n <= 1 || bytes == 0 {
        return Ok(CollectivePlan {
            kind,
            flows: Vec::new(),
            bytes_per_rank: bytes,
        });
    }
    let flows = match kind {
        CollectiveKind::AllReduce => ring_flows(gpus, cluster, bytes, 2 * (n - 1), n, chunking),
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter => {
            ring_flows(gpus, cluster, bytes, n - 1, n, chunking)
        }
        CollectiveKind::AllToAll => {
            let per_pair = (bytes / n as u64).max(1);
            let msgs = chunking.num_messages(per_pair).max(1);
            let mut flows = Vec::with_capacity(n * (n - 1));
            for (i, &src) in gpus.iter().enumerate() {
                for (j, &dst) in gpus.iter().enumerate() {
                    if i != j {
                        flows.push(Flow::new(src, dst, per_pair, msgs));
                    }
                }
            }
            flows
        }
        CollectiveKind::Broadcast => {
            let root = gpus[0];
            let msgs = chunking.num_messages(bytes).max(1);
            gpus[1..]
                .iter()
                .map(|&dst| Flow::new(root, dst, bytes, msgs))
                .collect()
        }
        CollectiveKind::SendRecv => {
            let msgs = chunking.num_messages(bytes).max(1);
            vec![Flow::new(
                gpus[0],
                *gpus.last().expect("n > 1"),
                bytes,
                msgs,
            )]
        }
    };
    Ok(CollectivePlan {
        kind,
        flows,
        bytes_per_rank: bytes,
    })
}

/// Build the per-hop flows of a ring algorithm with `phases` pipelined
/// phases moving `bytes/n` each.
fn ring_flows(
    gpus: &[GpuId],
    cluster: &Cluster,
    bytes: u64,
    phases: usize,
    n: usize,
    chunking: ChunkingPolicy,
) -> Vec<Flow> {
    let per_phase = (bytes / n as u64).max(1);
    let payload = per_phase * phases as u64;
    let msgs_per_phase = chunking.num_messages(per_phase).max(1);
    let mut flows = Vec::with_capacity(n);
    for i in 0..n {
        let src = gpus[i];
        let dst = gpus[(i + 1) % n];
        let mut flow = Flow::new(src, dst, payload, msgs_per_phase * phases as u64);
        // Pipelined phases serialize on ring latency once per phase beyond
        // the first (already charged via the route latency).
        if let Ok(route) = cluster.route(src, dst) {
            flow.startup_s =
                (phases.saturating_sub(1)) as f64 * cluster.route_latency_us(&route) * 1e-6;
        }
        flows.push(flow);
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::{presets, LinkClass};

    fn group(ids: &[u32]) -> Vec<GpuId> {
        ids.iter().map(|&i| GpuId(i)).collect()
    }

    #[test]
    fn singleton_group_is_free() {
        let c = presets::hgx_h200_cluster();
        let p = lower_collective(
            CollectiveKind::AllReduce,
            1 << 30,
            &group(&[3]),
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        assert!(p.flows.is_empty());
    }

    #[test]
    fn allreduce_moves_2n_minus_1_over_n() {
        let c = presets::hgx_h200_cluster();
        let bytes = 800 << 20;
        let n = 8;
        let p = lower_collective(
            CollectiveKind::AllReduce,
            bytes,
            &group(&[0, 1, 2, 3, 4, 5, 6, 7]),
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        assert_eq!(p.flows.len(), n);
        let per_hop = p.flows[0].bytes as f64;
        let expect = bytes as f64 * 2.0 * (n as f64 - 1.0) / n as f64;
        let rel = (per_hop - expect).abs() / expect;
        assert!(
            rel < 0.01,
            "per ring hop carries 2(n-1)/n of the buffer: {per_hop} vs {expect}"
        );
    }

    #[test]
    fn allgather_is_half_of_allreduce() {
        let c = presets::hgx_h200_cluster();
        let gpus = group(&[0, 1, 2, 3]);
        let bytes = 400 << 20;
        let ar = lower_collective(
            CollectiveKind::AllReduce,
            bytes,
            &gpus,
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        let ag = lower_collective(
            CollectiveKind::AllGather,
            bytes,
            &gpus,
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        assert!((ar.total_bytes() as f64 / ag.total_bytes() as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn all_to_all_is_fine_grained() {
        // n(n-1) pairwise flows of bytes/n each: many small messages, the
        // paper's EP pathology.
        let c = presets::hgx_h200_cluster();
        let gpus = group(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let p = lower_collective(
            CollectiveKind::AllToAll,
            64 << 20,
            &gpus,
            &c,
            ChunkingPolicy::Unchunked,
        )
        .unwrap();
        assert_eq!(p.flows.len(), 8 * 7);
        assert_eq!(p.flows[0].bytes, (64 << 20) / 8);
        assert_eq!(p.flows[0].num_messages, 1);
    }

    #[test]
    fn sendrecv_is_one_flow() {
        let c = presets::hgx_h200_cluster();
        let p = lower_collective(
            CollectiveKind::SendRecv,
            32 << 20,
            &group(&[7, 8]),
            &c,
            ChunkingPolicy::Unchunked,
        )
        .unwrap();
        assert_eq!(p.flows.len(), 1);
        assert_eq!(p.flows[0].src, GpuId(7));
        assert_eq!(p.flows[0].dst, GpuId(8));
        assert_eq!(p.flows[0].num_messages, 1);
    }

    #[test]
    fn chunked_sendrecv_has_more_messages() {
        let c = presets::hgx_h200_cluster();
        let unchunked = lower_collective(
            CollectiveKind::SendRecv,
            32 << 20,
            &group(&[0, 8]),
            &c,
            ChunkingPolicy::Unchunked,
        )
        .unwrap();
        let chunked = lower_collective(
            CollectiveKind::SendRecv,
            32 << 20,
            &group(&[0, 8]),
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        assert_eq!(unchunked.total_messages(), 1);
        assert_eq!(chunked.total_messages(), 8);
    }

    #[test]
    fn intra_node_ring_stays_on_nvlink() {
        let c = presets::hgx_h200_cluster();
        let gpus = group(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let p = lower_collective(
            CollectiveKind::AllReduce,
            1 << 28,
            &gpus,
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        for f in &p.flows {
            for id in f.route(&c).unwrap() {
                assert_eq!(c.link(id).class, LinkClass::NvLink);
            }
        }
    }

    #[test]
    fn cross_node_ring_crosses_nic() {
        let c = presets::hgx_h200_cluster();
        // A DP group striding across nodes (e.g. ranks 0, 8, 16, 24).
        let gpus = group(&[0, 8, 16, 24]);
        let p = lower_collective(
            CollectiveKind::AllReduce,
            1 << 28,
            &gpus,
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        let crosses = p.flows.iter().any(|f| {
            f.route(&c)
                .unwrap()
                .iter()
                .any(|id| c.link(*id).class == LinkClass::Nic)
        });
        assert!(crosses);
    }

    #[test]
    fn broadcast_fans_out_from_root() {
        let c = presets::hgx_h200_cluster();
        let p = lower_collective(
            CollectiveKind::Broadcast,
            1 << 20,
            &group(&[2, 3, 4]),
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        assert_eq!(p.flows.len(), 2);
        assert!(p.flows.iter().all(|f| f.src == GpuId(2)));
    }

    #[test]
    fn zero_bytes_lowers_empty() {
        let c = presets::hgx_h200_cluster();
        let p = lower_collective(
            CollectiveKind::AllReduce,
            0,
            &group(&[0, 1]),
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        assert!(p.flows.is_empty());
    }

    #[test]
    fn out_of_range_gpu_rejected() {
        let c = presets::hgx_h200_cluster();
        assert!(lower_collective(
            CollectiveKind::AllReduce,
            1,
            &group(&[0, 99]),
            &c,
            ChunkingPolicy::Unchunked,
        )
        .is_err());
    }

    #[test]
    fn ring_startup_scales_with_phases() {
        let c = presets::hgx_h200_cluster();
        let gpus = group(&[0, 1, 2, 3]);
        let ar = lower_collective(
            CollectiveKind::AllReduce,
            1 << 28,
            &gpus,
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        let ag = lower_collective(
            CollectiveKind::AllGather,
            1 << 28,
            &gpus,
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        assert!(ar.flows[0].startup_s > ag.flows[0].startup_s);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use charllm_hw::presets;
    use proptest::prelude::*;

    fn arb_group() -> impl Strategy<Value = Vec<GpuId>> {
        (2usize..=16, 0u32..16).prop_map(|(n, base)| {
            (0..n as u32)
                .map(|i| GpuId((base + i * 2) % 32))
                .collect::<Vec<_>>()
        })
    }

    proptest! {
        #[test]
        fn ring_collectives_move_expected_volume(
            group in arb_group(),
            bytes in 1u64..(1 << 32),
        ) {
            let c = presets::hgx_h200_cluster();
            let n = group.len() as f64;
            for (kind, factor) in [
                (CollectiveKind::AllReduce, 2.0 * (n - 1.0) / n),
                (CollectiveKind::AllGather, (n - 1.0) / n),
                (CollectiveKind::ReduceScatter, (n - 1.0) / n),
            ] {
                let p = lower_collective(kind, bytes, &group, &c, ChunkingPolicy::nccl_default())
                    .unwrap();
                let expect = bytes as f64 * factor * n;
                let got = p.total_bytes() as f64;
                // Integer chunking slack only.
                prop_assert!(
                    (got - expect).abs() <= 2.0 * n * n,
                    "{kind}: got {got}, expected {expect}"
                );
            }
        }

        #[test]
        fn alltoall_has_n_squared_fan_out(group in arb_group(), bytes in 1024u64..(1 << 28)) {
            let c = presets::hgx_h200_cluster();
            let n = group.len();
            let p = lower_collective(
                CollectiveKind::AllToAll,
                bytes,
                &group,
                &c,
                ChunkingPolicy::Unchunked,
            )
            .unwrap();
            prop_assert_eq!(p.flows.len(), n * (n - 1));
        }

        #[test]
        fn plans_never_have_self_flows(group in arb_group(), bytes in 1u64..(1 << 30)) {
            let c = presets::hgx_h200_cluster();
            for kind in [
                CollectiveKind::AllReduce,
                CollectiveKind::AllToAll,
                CollectiveKind::Broadcast,
            ] {
                let p = lower_collective(kind, bytes, &group, &c, ChunkingPolicy::Unchunked)
                    .unwrap();
                for f in &p.flows {
                    // Ring wrap may produce src == dst only when the same GPU
                    // appears twice in the group, which arb_group avoids for
                    // distinct ids; a degenerate duplicate-id group is the
                    // caller's contract violation.
                    if group.iter().filter(|&&g| g == f.src).count() == 1 {
                        prop_assert!(f.bytes > 0);
                    }
                }
            }
        }
    }
}
