//! Simulation configuration.

use serde::{Deserialize, Serialize};

/// Knobs controlling one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Iterations of the trace to replay.
    pub iterations: usize,
    /// Leading iterations excluded from performance/energy statistics
    /// (the paper discards warm-up iterations while temperatures settle).
    pub warmup_iterations: usize,
    /// Thermal/governor control period, seconds of simulated time.
    pub control_period_s: f64,
    /// Telemetry sampling period, seconds of simulated time.
    pub sample_period_s: f64,
    /// Hard cap on simulated time (guards against pathological configs).
    pub max_sim_time_s: f64,
    /// Seed for per-GPU hardware variability.
    pub seed: u64,
    /// Compute slowdown factor applied while communication flows touch the
    /// same GPU (SM/memory contention; elongates kernels under overlap,
    /// Fig. 11).
    pub overlap_slowdown: f64,
    /// Disable thermal/DVFS feedback (clocks pinned at boost) — the
    /// uniform-hardware ablation.
    pub thermal_feedback: bool,
    /// Start GPUs pre-warmed near their loaded steady-state temperature
    /// instead of idle-cold (stand-in for the paper's 10 discarded warm-up
    /// iterations).
    pub prewarm: bool,
    /// Failure injection: clamp the per-GPU power cap (watts) on one node,
    /// reproducing the paper's §1 anecdote where a node-level power failure
    /// made its GPUs run >4x slower and stall the whole pipeline.
    pub node_power_cap: Option<(u32, f64)>,
    /// Cluster-wide per-GPU power cap (watts), applied symmetrically to
    /// every GPU's DVFS governor (the paper's §6 power-capping sweeps).
    /// Unlike [`SimConfig::node_power_cap`] this preserves cross-replica
    /// symmetry, so folded runs stay exact under it.
    pub gpu_power_cap_w: Option<f64>,
    /// Replace the seeded per-GPU silicon variability with nominal
    /// (identical) parts. Makes replicas of a symmetric placement behave
    /// bit-identically — the precondition for symmetry folding — at the
    /// cost of the paper's part-to-part spread.
    pub uniform_variability: bool,
    /// Live-entity count (in-flight flows + computing ranks) above which
    /// the scheduler switches from a contiguous linear fold to the indexed
    /// completion heap. Both paths produce bit-identical timesteps; the
    /// scan wins below the crossover (cache-friendly, no heap churn), the
    /// heap wins above it (O(log n) per event instead of O(n)). The default
    /// sits under the measured crossover (the heap pulls ahead between ~384
    /// and ~512 live entities on the `sim_engine_hotpath` bench machine,
    /// a population reached around 512 GPUs).
    /// `0` forces the heap everywhere; `usize::MAX` forces the scan.
    pub sched_heap_threshold: usize,
    /// Worker threads for re-rating dirty flow batches in the heap
    /// scheduler. Re-rating is embarrassingly parallel — each flow's
    /// bottleneck rate is a pure min over its route links' fair shares
    /// given frozen loads — and results are written back in index order,
    /// so any worker count produces bit-identical simulations (pinned by
    /// the golden suites). `1` (the default) keeps the serial path;
    /// values above 1 fan small batches out over scoped threads.
    pub rerate_workers: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            iterations: 3,
            warmup_iterations: 1,
            control_period_s: 0.005,
            sample_period_s: 0.05,
            max_sim_time_s: 3600.0,
            seed: 42,
            overlap_slowdown: 1.12,
            thermal_feedback: true,
            prewarm: true,
            node_power_cap: None,
            gpu_power_cap_w: None,
            uniform_variability: false,
            sched_heap_threshold: 256,
            rerate_workers: 1,
        }
    }
}

impl SimConfig {
    /// A fast configuration for unit tests: single iteration, no warmup.
    pub fn fast() -> Self {
        SimConfig {
            iterations: 1,
            warmup_iterations: 0,
            ..SimConfig::default()
        }
    }

    /// Iterations included in measured statistics.
    pub fn measured_iterations(&self) -> usize {
        self.iterations
            .saturating_sub(self.warmup_iterations)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert!(c.iterations > c.warmup_iterations);
        assert!(c.control_period_s < c.sample_period_s);
        assert!(c.overlap_slowdown >= 1.0);
    }

    #[test]
    fn measured_iterations_never_zero() {
        let c = SimConfig {
            iterations: 1,
            warmup_iterations: 5,
            ..SimConfig::default()
        };
        assert_eq!(c.measured_iterations(), 1);
        assert_eq!(SimConfig::default().measured_iterations(), 2);
    }
}
