//! Per-rank span streams: the simulator's execution timeline.
//!
//! The Rust stand-in for a Chakra/Kineto trace: every compute kernel and
//! every blocking collective wait becomes a [`Span`] on its rank's track,
//! every network flow becomes a [`FlowSpan`] between two GPUs, and every
//! thermal-control tick records a [`PowerTick`] so energy can be attributed
//! back onto the timeline. The [`SpanRecorder`] is filled through the
//! simulator's observer hooks (`charllm-sim`'s `SimObserver`) and consumed
//! by [`crate::phase`] (wall-time/energy attribution) and
//! [`crate::chrome_trace`] (Perfetto export).

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use charllm_trace::{ComputeKind, KernelClass};

/// What a span on a rank's track represents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A compute kernel.
    Compute {
        /// Kernel class.
        kind: ComputeKind,
    },
    /// A blocking wait on a collective (closed when the collective
    /// completes; a rank that waits on an already-complete collective
    /// produces no span).
    Collective {
        /// Collective instance id within the trace.
        coll: u32,
        /// Reporting bucket of the collective.
        class: KernelClass,
    },
}

impl SpanKind {
    /// Human-readable label (used for trace-event names and top-k tables).
    pub fn label(&self) -> String {
        match self {
            SpanKind::Compute { kind } => format!("{kind:?}"),
            SpanKind::Collective { coll, class } => format!("{class}[c{coll}]"),
        }
    }

    /// Whether this span is a collective wait.
    pub fn is_collective(&self) -> bool {
        matches!(self, SpanKind::Collective { .. })
    }
}

/// One closed interval of rank activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Rank the span belongs to.
    pub rank: u32,
    /// GPU the rank is placed on.
    pub gpu: u32,
    /// Training iteration the span belongs to.
    pub iteration: u32,
    /// Start time, seconds of simulated time.
    pub t0_s: f64,
    /// End time, seconds of simulated time.
    pub t1_s: f64,
    /// What the rank was doing.
    pub kind: SpanKind,
}

impl Span {
    /// Span duration in seconds.
    pub fn dur_s(&self) -> f64 {
        self.t1_s - self.t0_s
    }
}

/// One network flow's lifetime (launch to retirement).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpan {
    /// Collective instance the flow belongs to.
    pub coll: u32,
    /// Iteration of the launching rank.
    pub iteration: u32,
    /// Source GPU index.
    pub src_gpu: u32,
    /// Destination GPU index.
    pub dst_gpu: u32,
    /// Launch time, seconds.
    pub t0_s: f64,
    /// Retirement time, seconds.
    pub t1_s: f64,
}

/// A collective instance completing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollComplete {
    /// Collective instance id.
    pub coll: u32,
    /// Iteration the instance belongs to.
    pub iteration: u32,
    /// Completion time, seconds.
    pub t_s: f64,
}

/// One thermal-control-period power reading for one GPU.
///
/// `power_w × period_s` is exactly the energy the simulator accrues for the
/// window `[t_s - period_s, t_s]`, so summing `measuring` ticks reproduces
/// the engine's measured energy bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerTick {
    /// GPU index.
    pub gpu: u32,
    /// Control-boundary time, seconds (end of the window).
    pub t_s: f64,
    /// Board power over the window, watts.
    pub power_w: f64,
    /// Window length, seconds.
    pub period_s: f64,
    /// Whether the window counts toward measured energy (post-warmup).
    pub measuring: bool,
}

/// Collects span streams, flow lifetimes, collective completions and power
/// ticks from a simulation run.
///
/// Ranks and GPUs are discovered lazily from the hook arguments, so the
/// recorder needs no up-front topology knowledge.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    spans: Vec<Vec<Span>>,
    open: Vec<Option<Span>>,
    gpu_of_rank: Vec<Option<u32>>,
    flows: Vec<FlowSpan>,
    /// Launch-ordered slab of in-flight flows; retired entries become
    /// `None`. The slab is cleared whenever the last open flow retires, so
    /// it stays bounded by the peak number of concurrent flows.
    open_slots: Vec<Option<FlowSpan>>,
    /// FIFO index queues into `open_slots` per flow identity.
    open_index: HashMap<(u32, u32, u32, u32), VecDeque<usize>>,
    open_flow_count: usize,
    completions: Vec<CollComplete>,
    power: Vec<PowerTick>,
}

impl SpanRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    fn ensure_rank(&mut self, rank: usize) {
        if rank >= self.spans.len() {
            self.spans.resize_with(rank + 1, Vec::new);
            self.open.resize_with(rank + 1, || None);
            self.gpu_of_rank.resize(rank + 1, None);
        }
    }

    /// Open a span on `rank`'s track. Panics (debug) if one is already open:
    /// the engines never nest rank activity.
    pub fn begin_task(&mut self, rank: usize, gpu: u32, iteration: u32, kind: SpanKind, t_s: f64) {
        self.ensure_rank(rank);
        debug_assert!(self.open[rank].is_none(), "rank {rank} has an open span");
        self.gpu_of_rank[rank] = Some(gpu);
        self.open[rank] = Some(Span {
            rank: rank as u32,
            gpu,
            iteration,
            t0_s: t_s,
            t1_s: t_s,
            kind,
        });
    }

    /// Close the open span on `rank`'s track at `t_s`.
    pub fn end_task(&mut self, rank: usize, t_s: f64) {
        self.ensure_rank(rank);
        if let Some(mut span) = self.open[rank].take() {
            span.t1_s = t_s;
            self.spans[rank].push(span);
        } else {
            debug_assert!(false, "rank {rank} closed a span it never opened");
        }
    }

    /// Record a flow launch.
    pub fn flow_launch(&mut self, coll: u32, iteration: u32, src_gpu: u32, dst_gpu: u32, t_s: f64) {
        let slot = self.open_slots.len();
        self.open_slots.push(Some(FlowSpan {
            coll,
            iteration,
            src_gpu,
            dst_gpu,
            t0_s: t_s,
            t1_s: t_s,
        }));
        self.open_index
            .entry((coll, iteration, src_gpu, dst_gpu))
            .or_default()
            .push_back(slot);
        self.open_flow_count += 1;
    }

    /// Record a flow retirement, matching the earliest open flow with the
    /// same identity (FIFO per `(coll, iteration, src, dst)`; chunked
    /// collectives launch several identical flows).
    pub fn flow_retire(&mut self, coll: u32, iteration: u32, src_gpu: u32, dst_gpu: u32, t_s: f64) {
        let key = (coll, iteration, src_gpu, dst_gpu);
        let slot = match self.open_index.get_mut(&key) {
            Some(queue) => {
                let slot = queue.pop_front();
                if queue.is_empty() {
                    self.open_index.remove(&key);
                }
                slot
            }
            None => None,
        };
        if let Some(slot) = slot {
            let mut flow = self.open_slots[slot].take().expect("indexed flow is open");
            flow.t1_s = t_s;
            self.flows.push(flow);
            self.open_flow_count -= 1;
            if self.open_flow_count == 0 {
                self.open_slots.clear();
            }
        } else {
            debug_assert!(false, "retired flow was never launched");
        }
    }

    /// Record a collective instance completing.
    pub fn collective_complete(&mut self, coll: u32, iteration: u32, t_s: f64) {
        self.completions.push(CollComplete {
            coll,
            iteration,
            t_s,
        });
    }

    /// Record one thermal-control-period power reading.
    pub fn power_tick(&mut self, gpu: u32, t_s: f64, power_w: f64, period_s: f64, measuring: bool) {
        self.power.push(PowerTick {
            gpu,
            t_s,
            power_w,
            period_s,
            measuring,
        });
    }

    /// Number of rank tracks seen so far.
    pub fn world(&self) -> usize {
        self.spans.len()
    }

    /// Closed spans of one rank, in emission (time) order.
    pub fn spans(&self, rank: usize) -> &[Span] {
        &self.spans[rank]
    }

    /// Number of closed spans across all ranks.
    pub fn num_spans(&self) -> usize {
        self.spans.iter().map(Vec::len).sum()
    }

    /// Spans still open (normally zero after a completed run).
    pub fn num_open_spans(&self) -> usize {
        self.open.iter().filter(|s| s.is_some()).count()
    }

    /// GPU a rank was observed on, if it ever ran anything.
    pub fn gpu_of_rank(&self, rank: usize) -> Option<u32> {
        self.gpu_of_rank.get(rank).copied().flatten()
    }

    /// Retired flows in retirement order.
    pub fn flows(&self) -> &[FlowSpan] {
        &self.flows
    }

    /// Flows still in flight (launch recorded, no retirement yet), in
    /// launch order.
    pub fn open_flows(&self) -> Vec<FlowSpan> {
        self.open_slots.iter().filter_map(|f| *f).collect()
    }

    /// Collective completions in completion order.
    pub fn completions(&self) -> &[CollComplete] {
        &self.completions
    }

    /// Power readings in recording order.
    pub fn power_ticks(&self) -> &[PowerTick] {
        &self.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_open_and_close_per_rank() {
        let mut r = SpanRecorder::new();
        r.begin_task(
            1,
            5,
            0,
            SpanKind::Compute {
                kind: ComputeKind::Gemm,
            },
            0.0,
        );
        r.end_task(1, 2.5);
        assert_eq!(r.world(), 2);
        assert_eq!(r.spans(0).len(), 0);
        assert_eq!(r.spans(1).len(), 1);
        let s = r.spans(1)[0];
        assert_eq!(s.gpu, 5);
        assert!((s.dur_s() - 2.5).abs() < 1e-12);
        assert_eq!(r.gpu_of_rank(1), Some(5));
        assert_eq!(r.gpu_of_rank(0), None);
        assert_eq!(r.num_open_spans(), 0);
    }

    #[test]
    fn flows_match_fifo_on_identical_identity() {
        let mut r = SpanRecorder::new();
        r.flow_launch(3, 0, 0, 1, 0.0);
        r.flow_launch(3, 0, 0, 1, 1.0);
        r.flow_retire(3, 0, 0, 1, 2.0);
        assert_eq!(r.flows().len(), 1);
        assert_eq!(r.open_flows().len(), 1);
        // FIFO: the retired flow is the one launched at t=0.
        assert_eq!(r.flows()[0].t0_s, 0.0);
        assert_eq!(r.open_flows()[0].t0_s, 1.0);
    }

    #[test]
    fn labels_distinguish_kinds() {
        let compute = SpanKind::Compute {
            kind: ComputeKind::Attention,
        };
        let coll = SpanKind::Collective {
            coll: 7,
            class: KernelClass::AllReduce,
        };
        assert_eq!(compute.label(), "Attention");
        assert_eq!(coll.label(), "AllReduce[c7]");
        assert!(coll.is_collective());
        assert!(!compute.is_collective());
    }
}
