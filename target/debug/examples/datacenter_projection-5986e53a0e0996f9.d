/root/repo/target/debug/examples/datacenter_projection-5986e53a0e0996f9.d: examples/datacenter_projection.rs

/root/repo/target/debug/examples/datacenter_projection-5986e53a0e0996f9: examples/datacenter_projection.rs

examples/datacenter_projection.rs:
