//! Expert parallelism and communication locality (§4.2, Figs. 5 and 7):
//! wide TP crowds EP out of the node and forces all-to-all traffic across
//! the InfiniBand fabric; narrow TP keeps expert routing node-local.
//!
//! ```sh
//! cargo run --release --example moe_expert_parallelism
//! ```

use charllm::prelude::*;
use charllm_trace::KernelClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = hgx_h200_cluster();
    let job = TrainJob::pretrain(mixtral_8x22b())
        .with_global_batch(32)
        .with_recompute(true);

    println!("Mixtral-8x22B on {} (recompute on):\n", cluster.name());
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "config", "tok/s", "tok/J", "A2A s", "SendRecv s", "pcie GB/gpu"
    );
    for label in ["EP8-TP4-PP1", "EP8-TP2-PP2", "EP8-TP1-PP4"] {
        let report = Experiment::builder()
            .cluster(cluster.clone())
            .job(job.clone())
            .parallelism(label)?
            .run()?;
        let mean = report.mean_kernel_time();
        let pcie_gb: f64 = (0..cluster.num_gpus())
            .map(|g| report.sim.traffic.pcie(g))
            .sum::<f64>()
            / cluster.num_gpus() as f64
            / 1e9;
        println!(
            "{:<14} {:>10.0} {:>10.2} {:>12.2} {:>12.2} {:>12.2}",
            label,
            report.tokens_per_s,
            report.tokens_per_joule,
            mean.get(KernelClass::AllToAll),
            mean.get(KernelClass::SendRecv),
            pcie_gb,
        );
    }
    println!(
        "\nWith TP4, each tensor-parallel group fills half a node, so the\n\
         8-way expert groups span nodes and their all-to-all crosses the NIC.\n\
         With TP1, all eight expert ranks fit in one node and the all-to-all\n\
         stays on NVLink — the EP8-TP1-PP4 configuration the paper highlights."
    );
    Ok(())
}
