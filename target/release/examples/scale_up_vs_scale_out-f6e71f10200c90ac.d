/root/repo/target/release/examples/scale_up_vs_scale_out-f6e71f10200c90ac.d: examples/scale_up_vs_scale_out.rs

/root/repo/target/release/examples/scale_up_vs_scale_out-f6e71f10200c90ac: examples/scale_up_vs_scale_out.rs

examples/scale_up_vs_scale_out.rs:
