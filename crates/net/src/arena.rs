//! Shared `u32`-indexed slice arenas for interning small per-flow tables.
//!
//! The unfolded event engine launches the same collective plan thousands of
//! times per run; every launched flow used to carry its own copy of its
//! route (links, bandwidths, multiplicities) and charge list. Interning
//! those slices into one flat arena turns a flow launch into a few index
//! writes: the flow stores a [`SliceRef`] — a `(offset, len)` pair into the
//! arena — instead of an inline array. Identical slices (and every replica
//! of a data-parallel plan produces many) dedup to the same storage, so the
//! hot rate loop walks one shared, cache-resident table.
//!
//! The arena is append-only: a [`SliceRef`] handed out once stays valid for
//! the arena's lifetime, which is what lets the simulator's parallel
//! re-rate workers read it through a plain shared borrow.

use std::collections::HashMap;

/// An element that can live in a [`SliceArena`].
///
/// `key_bits` feeds the dedup hash; `same` is the authoritative equality
/// used to confirm a candidate match (hash collisions fall back to it).
/// Floating-point fields should compare by bit pattern so that interning
/// never conflates two slices the simulator would treat differently.
pub trait ArenaItem: Copy {
    /// A 64-bit fingerprint of this element's identity.
    fn key_bits(&self) -> u64;
    /// Exact (bit-level for floats) equality.
    fn same(&self, other: &Self) -> bool;
}

/// A `(offset, len)` handle into a [`SliceArena`]. 8 bytes, `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SliceRef {
    off: u32,
    len: u32,
}

impl SliceRef {
    /// Offset of the first element in the arena.
    #[inline]
    pub fn off(self) -> u32 {
        self.off
    }

    /// Number of elements.
    #[inline]
    pub fn len(self) -> u32 {
        self.len
    }

    /// True when the slice is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Element indices covered by this ref, for indexed iteration that
    /// avoids borrowing the arena across a mutation.
    #[inline]
    pub fn indices(self) -> std::ops::Range<u32> {
        self.off..self.off + self.len
    }
}

fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer — cheap and well distributed.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn slice_hash<T: ArenaItem>(items: &[T]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ (items.len() as u64);
    for it in items {
        h = mix64(h ^ it.key_bits());
    }
    h
}

/// A deduplicating, append-only arena of `T` slices.
#[derive(Debug, Default)]
pub struct SliceArena<T: ArenaItem> {
    data: Vec<T>,
    index: HashMap<u64, Vec<SliceRef>>,
    hits: u64,
}

impl<T: ArenaItem> SliceArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        SliceArena {
            data: Vec::new(),
            index: HashMap::new(),
            hits: 0,
        }
    }

    /// Intern `items`, returning a handle to the canonical copy. Re-interning
    /// an identical slice returns the existing handle without growing the
    /// arena.
    pub fn intern(&mut self, items: &[T]) -> SliceRef {
        let h = slice_hash(items);
        let bucket = self.index.entry(h).or_default();
        for &r in bucket.iter() {
            let existing = &self.data[r.off as usize..(r.off + r.len) as usize];
            if existing.len() == items.len() && existing.iter().zip(items).all(|(a, b)| a.same(b)) {
                self.hits += 1;
                return r;
            }
        }
        let off = u32::try_from(self.data.len()).expect("slice arena exceeds u32 index space");
        let len = u32::try_from(items.len()).expect("interned slice exceeds u32 length");
        self.data.extend_from_slice(items);
        let r = SliceRef { off, len };
        bucket.push(r);
        r
    }

    /// The canonical slice behind `r`.
    #[inline]
    pub fn get(&self, r: SliceRef) -> &[T] {
        &self.data[r.off as usize..(r.off + r.len) as usize]
    }

    /// Single element by arena index (see [`SliceRef::indices`]).
    #[inline]
    pub fn item(&self, i: u32) -> T {
        self.data[i as usize]
    }

    /// Total elements stored (after dedup).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// How many intern calls were satisfied by an existing slice.
    pub fn dedup_hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Hop {
        link: u32,
        bw: f64,
    }

    impl ArenaItem for Hop {
        fn key_bits(&self) -> u64 {
            (self.link as u64) ^ self.bw.to_bits().rotate_left(17)
        }
        fn same(&self, other: &Self) -> bool {
            self.link == other.link && self.bw.to_bits() == other.bw.to_bits()
        }
    }

    #[test]
    fn identical_slices_dedup_to_one_ref() {
        let mut a = SliceArena::new();
        let s = [Hop { link: 3, bw: 25e9 }, Hop { link: 7, bw: 50e9 }];
        let r1 = a.intern(&s);
        let r2 = a.intern(&s);
        assert_eq!(r1, r2);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dedup_hits(), 1);
        assert_eq!(a.get(r1), &s);
    }

    #[test]
    fn distinct_slices_get_distinct_storage() {
        let mut a = SliceArena::new();
        let r1 = a.intern(&[Hop { link: 1, bw: 1.0 }]);
        let r2 = a.intern(&[Hop { link: 2, bw: 1.0 }]);
        let r3 = a.intern(&[Hop { link: 1, bw: 2.0 }]);
        assert_ne!(r1, r2);
        assert_ne!(r1, r3);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn float_identity_is_bitwise() {
        let mut a = SliceArena::new();
        let r1 = a.intern(&[Hop { link: 1, bw: 0.0 }]);
        let r2 = a.intern(&[Hop { link: 1, bw: -0.0 }]);
        assert_ne!(r1, r2, "0.0 and -0.0 must not be conflated");
    }

    #[test]
    fn refs_stay_valid_as_arena_grows() {
        let mut a = SliceArena::new();
        let first = a.intern(&[Hop { link: 0, bw: 9.0 }]);
        for i in 1..1000u32 {
            a.intern(&[Hop {
                link: i,
                bw: f64::from(i),
            }]);
        }
        assert_eq!(a.get(first), &[Hop { link: 0, bw: 9.0 }]);
        for i in first.indices() {
            assert_eq!(a.item(i).link, 0);
        }
    }

    #[test]
    fn empty_slice_interns_cleanly() {
        let mut a = SliceArena::<Hop>::new();
        let r = a.intern(&[]);
        assert!(r.is_empty());
        assert_eq!(a.get(r), &[] as &[Hop]);
    }
}
