//! JSON text output (compact and pretty).

use serde::{Number, Value};

/// Compact single-line JSON.
pub fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Indented multi-line JSON (two spaces, like serde_json's pretty printer).
pub fn pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some("  "), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::U64(u) => out.push_str(&u.to_string()),
        // Rust's float Display is shortest-roundtrip, so text output parses
        // back to the identical f64. JSON has no non-finite numbers; emit
        // null like JavaScript's JSON.stringify.
        Number::F64(f) if f.is_finite() => out.push_str(&f.to_string()),
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
