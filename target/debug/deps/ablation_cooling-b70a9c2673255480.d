/root/repo/target/debug/deps/ablation_cooling-b70a9c2673255480.d: crates/bench/benches/ablation_cooling.rs

/root/repo/target/debug/deps/ablation_cooling-b70a9c2673255480: crates/bench/benches/ablation_cooling.rs

crates/bench/benches/ablation_cooling.rs:
