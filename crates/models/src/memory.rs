//! Analytic memory footprints: weights, gradients, optimizer state and
//! activations.
//!
//! The activation model follows Korthikanti et al. ("Reducing Activation
//! Recomputation in Large Transformer Models"), specialized to the
//! flash-attention kernels the paper's frameworks use (no stored attention
//! matrix): one layer stores `s·b·h·(10 + 24/t)` bytes under tensor-parallel
//! width `t`, and only the `2·s·b·h`-byte layer input under full
//! recomputation.

use crate::arch::TransformerArch;
use crate::precision::Precision;

/// Bytes of Adam optimizer state per parameter when training in half
/// precision with an FP32 master copy (`4 + 4 + 4`).
pub const ADAM_BYTES_PER_PARAM: u64 = 12;

/// Weight bytes for a parameter count at a precision.
pub fn weight_bytes(params: u64, precision: Precision) -> u64 {
    params * precision.bytes()
}

/// Gradient bytes for a parameter count (kept at training precision).
pub fn grad_bytes(params: u64, precision: Precision) -> u64 {
    params * precision.bytes()
}

/// Optimizer-state bytes for `params`, divided across `shards` ranks when a
/// distributed optimizer (ZeRO-1) shards it.
///
/// ```
/// use charllm_models::memory::optimizer_bytes;
/// assert_eq!(optimizer_bytes(100, 1), 1200);
/// assert_eq!(optimizer_bytes(100, 4), 300);
/// ```
pub fn optimizer_bytes(params: u64, shards: usize) -> u64 {
    (params * ADAM_BYTES_PER_PARAM).div_ceil(shards.max(1) as u64)
}

/// Stored activation bytes for ONE layer of `arch` processing a microbatch
/// of `microbatch` sequences of length `seq`, under tensor-parallel width
/// `tp`, with or without full activation recomputation.
pub fn layer_activation_bytes(
    arch: &TransformerArch,
    seq: usize,
    microbatch: usize,
    tp: usize,
    recompute: bool,
) -> u64 {
    let sbh = (seq * microbatch * arch.hidden) as f64;
    let bytes = if recompute {
        // Only the layer input is stashed (fp16/bf16).
        2.0 * sbh
    } else {
        // Flash-attention variant of the Megatron activation formula. MoE
        // layers stash expert inputs/outputs for top-k experts, adding
        // roughly 8·top_k/t bytes per hidden element.
        let moe_extra = arch.moe.map_or(0.0, |m| 8.0 * m.top_k as f64 / tp as f64);
        sbh * (10.0 + 24.0 / tp as f64 + moe_extra)
    };
    bytes.ceil() as u64
}

/// A coarse bucket of per-rank memory use, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryBreakdown {
    /// Parameter storage.
    pub weights: u64,
    /// Gradient storage.
    pub grads: u64,
    /// Optimizer state (possibly sharded).
    pub optimizer: u64,
    /// Peak stashed activations.
    pub activations: u64,
    /// Framework/runtime overhead (CUDA context, NCCL buffers, workspace).
    pub overhead: u64,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.grads + self.optimizer + self.activations + self.overhead
    }

    /// Total in GiB for display.
    pub fn total_gib(&self) -> f64 {
        self.total() as f64 / (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn recompute_slashes_activation_memory() {
        let arch = presets::gpt3_175b();
        let full = layer_activation_bytes(&arch, 2048, 1, 1, false);
        let rec = layer_activation_bytes(&arch, 2048, 1, 1, true);
        assert!(rec < full / 10, "full={full} rec={rec}");
    }

    #[test]
    fn tensor_parallelism_shrinks_activations() {
        let arch = presets::gpt3_175b();
        let t1 = layer_activation_bytes(&arch, 2048, 1, 1, false);
        let t8 = layer_activation_bytes(&arch, 2048, 1, 8, false);
        assert!(t8 < t1);
        assert!(t8 > t1 / 8, "some activations do not shard with tp");
    }

    #[test]
    fn activations_scale_linearly_with_microbatch() {
        let arch = presets::llama3_70b();
        let m1 = layer_activation_bytes(&arch, 4096, 1, 2, false);
        let m4 = layer_activation_bytes(&arch, 4096, 4, 2, false);
        assert_eq!(m4, 4 * m1);
    }

    #[test]
    fn gpt3_175b_layer_activation_magnitude() {
        // s=2048, b=1, h=12288 => sbh = 25.2M elements; x34 bytes ≈ 860 MB.
        let arch = presets::gpt3_175b();
        let bytes = layer_activation_bytes(&arch, 2048, 1, 1, false) as f64;
        assert!((0.7e9..1.0e9).contains(&bytes), "bytes = {bytes:e}");
    }

    #[test]
    fn zero1_shards_optimizer() {
        let p = presets::gpt3_175b().total_params();
        assert_eq!(optimizer_bytes(p, 4), optimizer_bytes(p, 1).div_ceil(4));
        // Zero shards treated as one (no sharding).
        assert_eq!(optimizer_bytes(p, 0), optimizer_bytes(p, 1));
    }

    #[test]
    fn breakdown_total_sums_buckets() {
        let b = MemoryBreakdown {
            weights: 1,
            grads: 2,
            optimizer: 3,
            activations: 4,
            overhead: 5,
        };
        assert_eq!(b.total(), 15);
    }

    #[test]
    fn moe_layers_store_more_activations() {
        let moe = presets::mixtral_8x7b();
        let mut dense = moe.clone();
        dense.moe = None;
        let a_moe = layer_activation_bytes(&moe, 4096, 1, 1, false);
        let a_dense = layer_activation_bytes(&dense, 4096, 1, 1, false);
        assert!(a_moe > a_dense);
    }
}
