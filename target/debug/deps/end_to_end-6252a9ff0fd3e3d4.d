/root/repo/target/debug/deps/end_to_end-6252a9ff0fd3e3d4.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6252a9ff0fd3e3d4: tests/end_to_end.rs

tests/end_to_end.rs:
