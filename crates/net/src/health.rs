//! Per-link health state for fault injection.
//!
//! The fault engine degrades links by scaling their effective bandwidth at
//! rate-computation time rather than mutating the (shared, immutable)
//! cluster or collective plans. [`LinkHealth`] holds one multiplicative
//! bandwidth scale per link in the cluster's link table; a pristine table is
//! all `1.0`, and the simulator multiplies each link's bandwidth by its
//! scale when fair-sharing flows. Because `x * 1.0 == x` bit-exactly for
//! every finite IEEE-754 value, a pristine table leaves results
//! byte-identical to a fault-free run.

use serde::{Deserialize, Serialize};

/// Multiplicative bandwidth scale per link (1.0 = healthy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkHealth {
    scale: Vec<f64>,
}

impl LinkHealth {
    /// A fully healthy table for `num_links` links.
    pub fn pristine(num_links: usize) -> Self {
        LinkHealth {
            scale: vec![1.0; num_links],
        }
    }

    /// Number of links tracked.
    pub fn num_links(&self) -> usize {
        self.scale.len()
    }

    /// The bandwidth scale of a link (1.0 when healthy).
    #[inline]
    pub fn scale(&self, link: usize) -> f64 {
        self.scale[link]
    }

    /// Degrade (or change the degradation of) a link.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]` or `link` is out of range.
    pub fn set_scale(&mut self, link: usize, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0, 1], got {factor}"
        );
        self.scale[link] = factor;
    }

    /// Restore a link to full bandwidth.
    pub fn restore(&mut self, link: usize) {
        self.scale[link] = 1.0;
    }

    /// Whether every link is at full bandwidth.
    pub fn is_pristine(&self) -> bool {
        self.scale.iter().all(|&s| s == 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_table_scales_by_identity() {
        let h = LinkHealth::pristine(4);
        assert_eq!(h.num_links(), 4);
        assert!(h.is_pristine());
        for l in 0..4 {
            assert_eq!(h.scale(l), 1.0);
        }
    }

    #[test]
    fn degrade_and_restore_round_trip() {
        let mut h = LinkHealth::pristine(3);
        h.set_scale(1, 0.25);
        assert!(!h.is_pristine());
        assert_eq!(h.scale(1), 0.25);
        assert_eq!(h.scale(0), 1.0);
        h.restore(1);
        assert!(h.is_pristine());
    }

    #[test]
    #[should_panic(expected = "degradation factor")]
    fn zero_factor_rejected() {
        LinkHealth::pristine(1).set_scale(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "degradation factor")]
    fn factor_above_one_rejected() {
        LinkHealth::pristine(1).set_scale(0, 1.5);
    }
}
