//! Fault & resilience scenarios: goodput vs. MTBF across cluster scales.
//!
//! Injects deterministic periodic fail-stops (spaced `MTBF / num_gpus`, the
//! fleet-level failure rate of independent GPUs) with checkpoint/restart
//! recovery, and reports goodput, restart counts, energy wasted per failure
//! and downtime next to the fault-free baseline. Each scenario goes through
//! [`Sweep`] with one shared [`SimCache`]; the second pass over the same
//! scenarios is served entirely from cache (fault schedules participate in
//! the memoization key).
//!
//! ```sh
//! cargo run --release --example faults_mtbf
//! ```

use std::sync::Arc;

use charllm::prelude::*;
use charllm::sweep::Sweep;
use charllm_hw::Cluster;

/// MTBF per GPU, seconds of simulated time. Absurdly short against real
/// fleets (hours), scaled down to exercise recovery inside a short run.
const MTBF_S: [f64; 3] = [4.0, 8.0, 16.0];

fn cluster_sweep(
    cluster: &Arc<Cluster>,
    cache: &Arc<SimCache>,
    faults: Option<FaultPlan>,
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(8);
    let spec = ParallelismSpec::parse("TP2-PP2", cluster.num_gpus())?;
    // No warmup: goodput is measured-window-scoped, and a warmup iteration
    // would hide any outages that complete before measurement starts.
    let cfg = SimConfig {
        iterations: 8,
        warmup_iterations: 0,
        ..SimConfig::fast()
    };
    let mut sweep = Sweep::new(Arc::clone(cluster), job, vec![spec])
        .with_sim_config(cfg)
        .with_cache(Arc::clone(cache))
        .workers(0)
        .strict();
    if let Some(plan) = faults {
        sweep = sweep.with_faults(plan);
    }
    let mut reports = sweep.run()?;
    Ok(reports.remove(0))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clusters: Vec<(&str, Arc<Cluster>)> = vec![
        ("8xH200 (1 node)", Arc::new(single_hgx_node())),
        ("32xH200 (4 nodes)", Arc::new(hgx_h200_cluster())),
    ];
    let recovery = RecoveryPolicy::CheckpointRestart {
        checkpoint_interval_s: 1.0,
        restart_latency_s: 0.25,
    };
    let cache = Arc::new(SimCache::new());

    for pass in 1..=2 {
        println!("== pass {pass} ==");
        for (name, cluster) in &clusters {
            let num_gpus = cluster.num_gpus() as u32;
            let baseline = cluster_sweep(cluster, &cache, None)?;
            println!(
                "{name}: fault-free {:.1} tokens/s over {:.2}s simulated",
                baseline.tokens_per_s, baseline.sim.sim_time_s
            );
            // More GPUs -> shorter fleet MTBF -> more restarts in the same
            // window: the scaling argument for cheaper checkpoints.
            for mtbf in MTBF_S {
                let plan =
                    FaultPlan::periodic_fail_stops(mtbf, num_gpus, 60.0).with_recovery(recovery);
                let r = cluster_sweep(cluster, &cache, Some(plan))?;
                println!(
                    "  mtbf {mtbf:>4.1}s/gpu: goodput {:.1} tokens/s ({:.1}% of fault-free), \
                     {} restarts, {:.0} J wasted/failure, {:.2}s downtime",
                    r.sim.goodput_tokens_per_s,
                    100.0 * r.sim.goodput_tokens_per_s / baseline.tokens_per_s,
                    r.sim.restarts,
                    r.sim.energy_wasted_per_failure_j(),
                    r.sim.fault_downtime_s,
                );
            }
        }
        println!("cache after pass {pass}: {}", cache.stats());
    }
    Ok(())
}
