//! Ablation: chunked vs. unchunked pipeline SendRecv — directly testing the
//! paper's recommendation that "topology-aware collectives [should] adapt
//! communication patterns ... ensuring efficient bandwidth utilization"
//! (§4.2). Frameworks today issue monolithic P2P messages; we enable
//! NCCL-style chunking and measure the recovery.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, save_json, sim_config};
use charllm_trace::KernelClass;

fn main() {
    banner(
        "Ablation",
        "unchunked (framework default) vs chunked pipeline SendRecv",
    );
    let cluster = hgx_h200_cluster();
    let base = bench_job(gpt3_175b()).with_recompute(true);
    let mut rows = Vec::new();
    println!(
        "{:<12} {:<10} {:>11} {:>12} {:>10}",
        "config", "p2p", "tok/s", "SendRecv s", "step s"
    );
    for label in ["TP8-PP4", "TP4-PP8", "TP2-PP16"] {
        let Ok(spec) = ParallelismSpec::parse(label, cluster.num_gpus()) else {
            continue;
        };
        for (mode, chunked) in [("unchunked", false), ("chunked", true)] {
            let mut job = base.clone();
            job.optim.chunked_p2p = chunked;
            let Ok(r) = Experiment::builder()
                .cluster(cluster.clone())
                .job(job)
                .spec(spec)
                .sim_config(sim_config())
                .run()
            else {
                continue;
            };
            let sendrecv = r.mean_kernel_time().get(KernelClass::SendRecv);
            println!(
                "{:<12} {:<10} {:>11.0} {:>12.2} {:>10.2}",
                label, mode, r.tokens_per_s, sendrecv, r.step_time_s
            );
            rows.push(serde_json::json!({
                "parallelism": label,
                "chunked": chunked,
                "tokens_per_s": r.tokens_per_s,
                "sendrecv_s": sendrecv,
                "step_s": r.step_time_s,
            }));
        }
    }
    save_json("ablation_chunking", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: chunking pipelines the GPU->host->NIC staging of\n\
         cross-node activations, cutting exposed SendRecv time most where\n\
         TP+PP combine (many small per-TP-rank messages)."
    );
}
