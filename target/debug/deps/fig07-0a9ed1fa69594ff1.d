/root/repo/target/debug/deps/fig07-0a9ed1fa69594ff1.d: crates/bench/benches/fig07.rs Cargo.toml

/root/repo/target/debug/deps/libfig07-0a9ed1fa69594ff1.rmeta: crates/bench/benches/fig07.rs Cargo.toml

crates/bench/benches/fig07.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
