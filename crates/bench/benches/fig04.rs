//! Figure 4: GPU temperature, power and frequency for the H200 (top) and
//! MI250 (bottom) clusters across models and parallelism strategies, with
//! activation recomputation enabling the deeper configurations.

use charllm::prelude::*;
use charllm::sweep::normalized;
use charllm_bench::{banner, bench_job, feasible, report_json, run_points, save_json};

fn main() {
    banner(
        "Figure 4",
        "temperature / power / frequency across models and parallelism",
    );
    let mut rows = Vec::new();
    let sets: Vec<(charllm_hw::Cluster, Vec<charllm_models::TransformerArch>)> = vec![
        (hgx_h200_cluster(), nvidia_models()),
        (mi250_cluster(), amd_models()),
    ];
    for (cluster, archs) in sets {
        println!("\n=== {} ===", cluster.name());
        for arch in archs {
            println!("\n--- {} ---", arch.name);
            println!(
                "{:<14} {:<5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
                "config", "opt", "eff", "avg W", "peak W", "avg C", "peak C", "MHz"
            );
            let base = bench_job(arch.clone());
            let mut points: Vec<(TrainJob, ParallelismSpec)> = Vec::new();
            for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
                for job in [base.clone(), base.clone().with_recompute(true)] {
                    if feasible(&job, &spec, &cluster) {
                        points.push((job, spec));
                    }
                }
            }
            let reports = run_points(&cluster, &points);
            for (r, eff) in normalized(&reports, |r| r.tokens_per_joule) {
                println!(
                    "{:<14} {:<5} {:>8.2} {:>8.0} {:>8.0} {:>8.1} {:>8.1} {:>7.0}",
                    r.parallelism,
                    r.optimization,
                    eff,
                    r.mean_power_w,
                    r.peak_power_w,
                    r.mean_temp_c,
                    r.peak_temp_c,
                    r.mean_freq_mhz,
                );
                rows.push(report_json(r));
            }
        }
    }
    save_json("fig04", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: deeper PP raises power/temperature (compute-dense\n\
         stages); TP-heavy configs draw less power but lose efficiency to\n\
         communication; recomputation costs efficiency where memory allows\n\
         the base config but unlocks otherwise-infeasible deep-PP points."
    );
}
