/root/repo/target/debug/deps/charllm_ppt-b9d6ea5916e8744c.d: src/lib.rs

/root/repo/target/debug/deps/charllm_ppt-b9d6ea5916e8744c: src/lib.rs

src/lib.rs:
