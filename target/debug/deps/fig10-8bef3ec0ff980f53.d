/root/repo/target/debug/deps/fig10-8bef3ec0ff980f53.d: crates/bench/benches/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-8bef3ec0ff980f53.rmeta: crates/bench/benches/fig10.rs Cargo.toml

crates/bench/benches/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
