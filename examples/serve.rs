//! Sim-as-a-service demo: two server "processes" sharing one persistent
//! cache directory.
//!
//! Server A starts with an empty cache directory, runs a small sweep job
//! (populating the disk tier on the way out), and shuts down. Server B —
//! a fresh process as far as the cache is concerned — runs the *same*
//! sweep and is served from disk: no re-lowering, no collective
//! re-routing. The second pass's `disk_hits` line is the proof (and what
//! `ci.sh` greps). Finishes by downloading a Perfetto trace for one
//! sweep point off the warm cache.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use std::sync::Arc;

use charllm::prelude::*;
use charllm::server::http_request;
use charllm::CoreError;
use serde_json::{Number, Value};

const JOB: &str = r#"{"kind": "sweep", "cluster": "single_hgx_node", "model": "gpt3_13b",
                      "global_batch": 8, "specs": ["TP2-PP2", "TP4-PP2"],
                      "microbatches": [1, 2], "workers": 2}"#;

fn u64_of(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_number)
        .and_then(Number::to_u64)
        .unwrap_or(0)
}

/// Boot a server over `dir`, run the demo sweep to completion, and
/// return `(cache stats doc, job id, bound address kept alive in `srv`)`.
fn run_pass(dir: &std::path::Path, label: &str) -> Result<(Value, SimServer, u64), CoreError> {
    let cache = Arc::new(SimCache::new().with_disk_tier(dir)?);
    let server = SimServer::bind("127.0.0.1:0", cache, ServerConfig::default())?;
    let addr = server.local_addr();
    println!("[{label}] listening on {addr}");

    let (status, resp) = http_request(addr, "POST", "/jobs", Some(JOB))?;
    assert_eq!(status, 202, "submit failed: {resp}");
    let id = u64_of(
        &serde_json::from_str(&resp)
            .map_err(|e| CoreError::Incomplete(format!("bad submit response: {e}")))?,
        "job",
    );

    // The stream is close-delimited: reading it to EOF waits for the job.
    let (_, stream) = http_request(addr, "GET", &format!("/jobs/{id}/stream"), None)?;
    for line in stream.lines().take(2) {
        println!("[{label}] {line}");
    }
    let (_, result) = http_request(addr, "GET", &format!("/jobs/{id}/result"), None)?;
    let result: Value = serde_json::from_str(&result)
        .map_err(|e| CoreError::Incomplete(format!("bad result: {e}")))?;
    println!(
        "[{label}] job {id}: {} points, {} completed",
        u64_of(&result, "total"),
        u64_of(&result, "completed"),
    );

    let (_, cache_doc) = http_request(addr, "GET", "/cache", None)?;
    let cache_doc: Value = serde_json::from_str(&cache_doc)
        .map_err(|e| CoreError::Incomplete(format!("bad cache doc: {e}")))?;
    Ok((cache_doc, server, id))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("charllm_serve_{}", std::process::id()));

    // Pass 1: empty directory, everything cold; artifacts persist on the
    // way out of each experiment.
    let (doc, server, _) = run_pass(&dir, "server A")?;
    let stats = doc.get("stats").cloned().unwrap_or(Value::Null);
    println!(
        "[server A] cache: lowered {} misses, {} bytes written to disk",
        u64_of(&stats, "lowered_misses"),
        u64_of(&stats, "bytes_written"),
    );
    server.shutdown();

    // Pass 2: a brand-new server over the same directory — the restart.
    let (doc, server, id) = run_pass(&dir, "server B")?;
    let stats = doc.get("stats").cloned().unwrap_or(Value::Null);
    let disk_hits = u64_of(&doc, "disk_hits");
    println!(
        "server B pass 2: disk_hits={disk_hits} lowered_misses={} plan_misses={}",
        u64_of(&stats, "lowered_misses"),
        u64_of(&stats, "plan_misses"),
    );

    // Perfetto trace for sweep point 0, served from the warm cache.
    let addr = server.local_addr();
    let (status, trace) = http_request(addr, "GET", &format!("/jobs/{id}/trace/0"), None)?;
    assert_eq!(status, 200, "trace download failed");
    let events = serde_json::from_str::<Value>(&trace)
        .ok()
        .and_then(|t| t.get("traceEvents").and_then(Value::as_array).map(Vec::len))
        .unwrap_or(0);
    println!(
        "perfetto trace for point 0: {events} events ({} bytes)",
        trace.len()
    );
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    if disk_hits == 0 {
        println!("persistent cache: FAIL (restart never hit the disk tier)");
        std::process::exit(1);
    }
    println!("persistent cache: OK (restart served from disk)");
    Ok(())
}
