//! Insight analyses: executable versions of the paper's qualitative claims.
//!
//! - [`table2_row`] reproduces Table 2: the direction each technique
//!   moves training time, memory and communication, *measured* from
//!   simulation + the memory model instead of asserted;
//! - [`crossover`] detects the §4.1 scale-up vs. scale-out crossover from
//!   two report sets.

use serde::{Deserialize, Serialize};

use charllm_hw::Cluster;
use charllm_models::TrainJob;
use charllm_parallel::{rank_memory, ParallelismSpec, StagePartition};
use charllm_sim::SimConfig;

use crate::error::CoreError;
use crate::experiment::Experiment;
use crate::report::RunReport;

/// Direction of an effect relative to a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Strong increase (≥ +25 %).
    StrongUp,
    /// Increase (+5 %..+25 %).
    Up,
    /// Within ±5 %.
    Neutral,
    /// Decrease (−25 %..−5 %).
    Down,
    /// Strong decrease (≤ −25 %).
    StrongDown,
}

impl Direction {
    /// Classify a relative change `(new - base) / base`.
    pub fn of(rel_change: f64) -> Self {
        if rel_change >= 0.25 {
            Direction::StrongUp
        } else if rel_change >= 0.05 {
            Direction::Up
        } else if rel_change <= -0.25 {
            Direction::StrongDown
        } else if rel_change <= -0.05 {
            Direction::Down
        } else {
            Direction::Neutral
        }
    }

    /// The paper's arrow notation.
    pub fn arrow(self) -> &'static str {
        match self {
            Direction::StrongUp => "^^",
            Direction::Up => "^",
            Direction::Neutral => "-",
            Direction::Down => "v",
            Direction::StrongDown => "vv",
        }
    }

    /// Whether the direction is (strongly or weakly) an increase.
    pub fn is_up(self) -> bool {
        matches!(self, Direction::Up | Direction::StrongUp)
    }

    /// Whether the direction is (strongly or weakly) a decrease.
    pub fn is_down(self) -> bool {
        matches!(self, Direction::Down | Direction::StrongDown)
    }
}

/// One measured Table 2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Technique label (e.g. `"TP"`, `"act"`).
    pub technique: String,
    /// Effect on training *performance* (throughput), matching the paper's
    /// Perf column: ↑ = faster.
    pub perf: Direction,
    /// Effect on per-rank memory footprint.
    pub memory: Direction,
    /// Effect on communication volume per rank.
    pub comm: Direction,
    /// Relative throughput change backing the Perf arrow.
    pub perf_change: f64,
    /// Relative memory change.
    pub memory_change: f64,
    /// Relative communication change.
    pub comm_change: f64,
}

/// Measure one Table 2 row: run `baseline` and `variant` (each a job ×
/// parallelism × cluster triple) and compare throughput, modeled per-rank
/// memory, and simulated per-rank communication volume.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn table2_row(
    technique: &str,
    baseline: (&TrainJob, ParallelismSpec, &Cluster),
    variant: (&TrainJob, ParallelismSpec, &Cluster),
    sim: SimConfig,
) -> Result<Table2Row, CoreError> {
    let run = |job: &TrainJob,
               spec: ParallelismSpec,
               cluster: &Cluster|
     -> Result<(RunReport, u64), CoreError> {
        let report = Experiment::builder()
            .cluster(cluster.clone())
            .job(job.clone())
            .spec(spec)
            .sim_config(sim)
            .run()?;
        let partition = StagePartition::even(job.arch.num_layers, spec.pp)?;
        let mem = rank_memory(job, &spec, &partition).total();
        Ok((report, mem))
    };
    let (base_report, base_mem) = run(baseline.0, baseline.1, baseline.2)?;
    let (var_report, var_mem) = run(variant.0, variant.1, variant.2)?;

    // Per-rank communication volume (totals would reward merely adding
    // GPUs when the two sides use different cluster sizes).
    let comm = |r: &RunReport| -> f64 {
        let n = r.sim.traffic.num_gpus().max(1);
        (0..n).map(|g| r.sim.traffic.total(g)).sum::<f64>() / n as f64
    };
    // Throughput direction, matching the paper's Perf column.
    let perf_change = var_report.tokens_per_s / base_report.tokens_per_s - 1.0;
    let memory_change = var_mem as f64 / base_mem as f64 - 1.0;
    let base_comm = comm(&base_report).max(1.0);
    let comm_change = comm(&var_report) / base_comm - 1.0;

    Ok(Table2Row {
        technique: technique.to_string(),
        perf: Direction::of(perf_change),
        memory: Direction::of(memory_change),
        comm: Direction::of(comm_change),
        perf_change,
        memory_change,
        comm_change,
    })
}

/// A scale-up vs. scale-out comparison point (§4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossoverPoint {
    /// Configuration label.
    pub config: String,
    /// Scale-up throughput, tokens/s.
    pub scale_up_tokens_per_s: f64,
    /// Scale-out throughput, tokens/s.
    pub scale_out_tokens_per_s: f64,
    /// Scale-up efficiency, tokens/J.
    pub scale_up_tokens_per_joule: f64,
    /// Scale-out efficiency, tokens/J.
    pub scale_out_tokens_per_joule: f64,
}

impl CrossoverPoint {
    /// Whether the scale-up system wins on throughput here.
    pub fn scale_up_wins_perf(&self) -> bool {
        self.scale_up_tokens_per_s > self.scale_out_tokens_per_s
    }

    /// Whether the scale-up system wins on energy efficiency here.
    pub fn scale_up_wins_efficiency(&self) -> bool {
        self.scale_up_tokens_per_joule > self.scale_out_tokens_per_joule
    }
}

/// Pair up reports from a scale-up and a scale-out cluster by
/// (parallelism, optimization, microbatch) label.
pub fn crossover(scale_up: &[RunReport], scale_out: &[RunReport]) -> Vec<CrossoverPoint> {
    let mut out = Vec::new();
    for up in scale_up {
        let key = (&up.parallelism, &up.optimization, up.microbatch);
        if let Some(down) = scale_out
            .iter()
            .find(|r| (&r.parallelism, &r.optimization, r.microbatch) == key)
        {
            out.push(CrossoverPoint {
                config: format!("{} {}", up.parallelism, up.optimization),
                scale_up_tokens_per_s: up.tokens_per_s,
                scale_out_tokens_per_s: down.tokens_per_s,
                scale_up_tokens_per_joule: up.tokens_per_joule,
                scale_out_tokens_per_joule: down.tokens_per_joule,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_classification() {
        assert_eq!(Direction::of(0.5), Direction::StrongUp);
        assert_eq!(Direction::of(0.1), Direction::Up);
        assert_eq!(Direction::of(0.0), Direction::Neutral);
        assert_eq!(Direction::of(-0.1), Direction::Down);
        assert_eq!(Direction::of(-0.5), Direction::StrongDown);
    }

    #[test]
    fn arrows_match_paper_notation() {
        assert_eq!(Direction::StrongUp.arrow(), "^^");
        assert_eq!(Direction::Neutral.arrow(), "-");
        assert_eq!(Direction::StrongDown.arrow(), "vv");
    }

    #[test]
    fn direction_predicates() {
        assert!(Direction::Up.is_up());
        assert!(Direction::StrongDown.is_down());
        assert!(!Direction::Neutral.is_up());
        assert!(!Direction::Neutral.is_down());
    }

    #[test]
    fn measured_table2_act_row() {
        // Activation recomputation: slower (perf ^), much less memory (vv),
        // comm unchanged (-) — exactly Table 2's "act" row.
        use crate::presets::single_hgx_node;
        use charllm_models::presets as models;
        let cluster = single_hgx_node();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let spec = ParallelismSpec::parse("TP2-PP4", 8).unwrap();
        let row = table2_row(
            "act",
            (&job, spec, &cluster),
            (&job.clone().with_recompute(true), spec, &cluster),
            SimConfig::fast(),
        )
        .unwrap();
        assert!(row.perf.is_down(), "recompute slows training: {:?}", row);
        assert!(row.memory.is_down(), "recompute saves memory: {:?}", row);
        assert_eq!(row.comm, Direction::Neutral, "comm unchanged: {:?}", row);
    }

    #[test]
    fn crossover_pairs_by_config() {
        fn report(parallelism: &str, tps: f64, cluster: &str) -> RunReport {
            let mut r: RunReport = serde_json::from_str(&template_json()).unwrap();
            r.parallelism = parallelism.to_string();
            r.tokens_per_s = tps;
            r.cluster = cluster.to_string();
            r
        }
        let up = vec![report("TP2-PP16", 100.0, "32xH200")];
        let out = vec![
            report("TP2-PP16", 80.0, "64xH100"),
            report("TP8-PP4", 200.0, "64xH100"),
        ];
        let points = crossover(&up, &out);
        assert_eq!(points.len(), 1);
        assert!(points[0].scale_up_wins_perf());
    }

    fn template_json() -> String {
        let sim = charllm_sim::SimResult {
            step_time_s: 1.0,
            iteration_times_s: vec![1.0],
            tokens_per_s: 1.0,
            energy_per_step_j: 1.0,
            tokens_per_joule: 1.0,
            kernel_time: vec![],
            traffic: charllm_sim::TrafficMatrix::new(0),
            telemetry: charllm_telemetry::TelemetryStore::new(0),
            throttle_ratio: vec![],
            thermal_throttle_ratio: vec![],
            occupancy: vec![],
            sim_time_s: 1.0,
            goodput_tokens_per_s: 1.0,
            energy_wasted_j: 0.0,
            restarts: 0,
            fault_downtime_s: 0.0,
            profile: None,
        };
        let r = RunReport {
            label: String::new(),
            cluster: String::new(),
            model: String::new(),
            parallelism: String::new(),
            optimization: "Base".into(),
            microbatch: 1,
            step_time_s: 1.0,
            tokens_per_s: 1.0,
            tokens_per_s_per_gpu: 1.0,
            tokens_per_joule: 1.0,
            energy_per_step_j: 1.0,
            mean_power_w: 1.0,
            peak_power_w: 1.0,
            mean_temp_c: 1.0,
            peak_temp_c: 1.0,
            mean_freq_mhz: 1.0,
            front_temp_c: 1.0,
            rear_temp_c: 1.0,
            mean_throttle: 0.0,
            max_throttle: 0.0,
            cache: None,
            stages: None,
            sim,
        };
        serde_json::to_string(&r).unwrap()
    }
}
