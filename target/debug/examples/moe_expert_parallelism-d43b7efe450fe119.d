/root/repo/target/debug/examples/moe_expert_parallelism-d43b7efe450fe119.d: examples/moe_expert_parallelism.rs

/root/repo/target/debug/examples/moe_expert_parallelism-d43b7efe450fe119: examples/moe_expert_parallelism.rs

examples/moe_expert_parallelism.rs:
