/root/repo/target/debug/examples/moe_expert_parallelism-6d11fb493bbe7bb0.d: examples/moe_expert_parallelism.rs Cargo.toml

/root/repo/target/debug/examples/libmoe_expert_parallelism-6d11fb493bbe7bb0.rmeta: examples/moe_expert_parallelism.rs Cargo.toml

examples/moe_expert_parallelism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
