/root/repo/target/debug/deps/charllm_models-5df299c722589cb5.d: crates/models/src/lib.rs crates/models/src/arch.rs crates/models/src/error.rs crates/models/src/flops.rs crates/models/src/job.rs crates/models/src/lora.rs crates/models/src/memory.rs crates/models/src/precision.rs crates/models/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_models-5df299c722589cb5.rmeta: crates/models/src/lib.rs crates/models/src/arch.rs crates/models/src/error.rs crates/models/src/flops.rs crates/models/src/job.rs crates/models/src/lora.rs crates/models/src/memory.rs crates/models/src/precision.rs crates/models/src/presets.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/arch.rs:
crates/models/src/error.rs:
crates/models/src/flops.rs:
crates/models/src/job.rs:
crates/models/src/lora.rs:
crates/models/src/memory.rs:
crates/models/src/precision.rs:
crates/models/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
