//! Figure 19: thermal and power change over time for GPT and Mixtral
//! training — persistent front-vs-rear imbalance with no cooldown periods.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, save_json, sim_config, try_run};

fn main() {
    banner(
        "Figure 19",
        "power/temperature time series, front vs rear GPUs",
    );
    let cluster = hgx_h200_cluster();
    let airflow = cluster.node_layout().airflow.clone();
    let mut json = serde_json::Map::new();
    let runs: Vec<(&str, TrainJob, &str)> = vec![
        (
            "GPT3-175B",
            bench_job(gpt3_175b()).with_recompute(true),
            "TP2-PP16",
        ),
        (
            "Mixtral-8x22B",
            bench_job(mixtral_8x22b()).with_recompute(true),
            "EP8-TP1-PP4",
        ),
    ];
    let _ = sim_config();
    for (name, job, label) in runs {
        let Ok(spec) = ParallelismSpec::parse(label, cluster.num_gpus()) else {
            continue;
        };
        let Some(r) = try_run(&cluster, &job, spec) else {
            continue;
        };
        // Average the front group and the rear group at each sample.
        let front: Vec<usize> = (0..cluster.num_gpus())
            .filter(|&g| !airflow.is_rear(g % 8))
            .collect();
        let rear: Vec<usize> = (0..cluster.num_gpus())
            .filter(|&g| airflow.is_rear(g % 8))
            .collect();
        let n = r.sim.telemetry.temp(0).len();
        let avg_at = |group: &[usize], i: usize, temp: bool| -> f64 {
            group
                .iter()
                .map(|&g| {
                    let s = if temp {
                        r.sim.telemetry.temp(g)
                    } else {
                        r.sim.telemetry.power(g)
                    };
                    s.values()[i]
                })
                .sum::<f64>()
                / group.len() as f64
        };
        println!("\n--- {name} {label} (sampled every ~10% of the run) ---");
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10}",
            "t (s)", "front C", "rear C", "front W", "rear W"
        );
        let stride = (n / 10).max(1);
        let mut series = Vec::new();
        for i in (0..n).step_by(stride) {
            let t = r.sim.telemetry.temp(0).times()[i];
            let ft = avg_at(&front, i, true);
            let rt = avg_at(&rear, i, true);
            let fp = avg_at(&front, i, false);
            let rp = avg_at(&rear, i, false);
            println!("{t:>8.1} {ft:>10.1} {rt:>10.1} {fp:>10.0} {rp:>10.0}");
            series.push(serde_json::json!({
                "t": t, "front_c": ft, "rear_c": rt, "front_w": fp, "rear_w": rp,
            }));
        }
        json.insert(name.to_string(), serde_json::Value::Array(series));
    }
    save_json("fig19", &serde_json::Value::Object(json));
    println!(
        "\nExpected shape: rear GPUs run persistently hotter than front GPUs\n\
         for the whole session with no cooldown windows; power fluctuates\n\
         with the execution phases while the thermal gap endures."
    );
}
