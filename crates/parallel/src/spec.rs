//! Parallelism specification and the paper's labelling scheme.

use serde::{Deserialize, Serialize};

use crate::error::ParallelError;

/// Widths of every parallelism dimension for one training run.
///
/// World size is `tp × ep × dp × pp`. When `fsdp` is set, the data-parallel
/// dimension shards parameters/gradients/optimizer (PyTorch-FSDP style)
/// instead of replicating them — the paper's `TP8-FSDP` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelismSpec {
    /// Tensor-parallel width (within a node in all paper configs).
    pub tp: usize,
    /// Pipeline-parallel depth.
    pub pp: usize,
    /// Expert-parallel width (1 for dense models).
    pub ep: usize,
    /// Data-parallel width.
    pub dp: usize,
    /// Whether the DP dimension runs FSDP (parameter sharding).
    pub fsdp: bool,
}

impl ParallelismSpec {
    /// A plain data-parallel spec.
    pub fn data_parallel(dp: usize) -> Self {
        ParallelismSpec {
            tp: 1,
            pp: 1,
            ep: 1,
            dp,
            fsdp: false,
        }
    }

    /// Construct with explicit widths.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::ZeroWidth`] for any zero width.
    pub fn new(
        tp: usize,
        pp: usize,
        ep: usize,
        dp: usize,
        fsdp: bool,
    ) -> Result<Self, ParallelError> {
        for (w, name) in [(tp, "tp"), (pp, "pp"), (ep, "ep"), (dp, "dp")] {
            if w == 0 {
                return Err(ParallelError::ZeroWidth(match name {
                    "tp" => "tensor parallel",
                    "pp" => "pipeline parallel",
                    "ep" => "expert parallel",
                    _ => "data parallel",
                }));
            }
        }
        Ok(ParallelismSpec {
            tp,
            pp,
            ep,
            dp,
            fsdp,
        })
    }

    /// Construct from model-parallel widths, inferring DP so the spec fills
    /// `world` GPUs — the paper's convention ("in a 32-GPU system, TP4-PP4
    /// implies an additional DP of 2").
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::WorldSizeMismatch`] when `tp·ep·pp` does not
    /// divide `world`, and [`ParallelError::ZeroWidth`] for zero widths.
    pub fn infer_dp(
        tp: usize,
        pp: usize,
        ep: usize,
        world: usize,
        fsdp: bool,
    ) -> Result<Self, ParallelError> {
        if tp == 0 || pp == 0 || ep == 0 {
            return Err(ParallelError::ZeroWidth("model parallel"));
        }
        let mp = tp * pp * ep;
        if mp == 0 || !world.is_multiple_of(mp) || world == 0 {
            return Err(ParallelError::WorldSizeMismatch { product: mp, world });
        }
        ParallelismSpec::new(tp, pp, ep, world / mp, fsdp)
    }

    /// Total number of ranks.
    pub fn world(&self) -> usize {
        self.tp * self.ep * self.dp * self.pp
    }

    /// Total model parallelism (`tp × pp × ep`), the quantity the paper
    /// minimizes to fit a model in memory.
    pub fn model_parallel(&self) -> usize {
        self.tp * self.pp * self.ep
    }

    /// The paper's label: `EP<e>-TP<t>-PP<p>` when EP is used, `TP<t>-FSDP`
    /// for FSDP runs, otherwise `TP<t>-PP<p>` (DP implied).
    pub fn label(&self) -> String {
        if self.ep > 1 {
            format!("EP{}-TP{}-PP{}", self.ep, self.tp, self.pp)
        } else if self.fsdp {
            format!("TP{}-FSDP{}", self.tp, self.dp)
        } else {
            format!("TP{}-PP{}", self.tp, self.pp)
        }
    }

    /// Parse a paper-style label (`"TP2-PP16"`, `"EP8-TP1-PP4"`,
    /// `"TP8-FSDP4"`) and infer DP for a world size.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::ParseError`] for malformed labels and
    /// propagates world-size mismatches.
    pub fn parse(label: &str, world: usize) -> Result<Self, ParallelError> {
        let mut tp = 1usize;
        let mut pp = 1usize;
        let mut ep = 1usize;
        let mut fsdp_width: Option<usize> = None;
        for part in label.split('-') {
            let (key, digits) = part
                .char_indices()
                .find(|(_, c)| c.is_ascii_digit())
                .map(|(i, _)| part.split_at(i))
                .ok_or_else(|| ParallelError::ParseError(format!("no width in '{part}'")))?;
            let width: usize = digits
                .parse()
                .map_err(|_| ParallelError::ParseError(format!("bad width in '{part}'")))?;
            match key.to_ascii_uppercase().as_str() {
                "TP" => tp = width,
                "PP" => pp = width,
                "EP" => ep = width,
                "FSDP" => fsdp_width = Some(width),
                other => {
                    return Err(ParallelError::ParseError(format!(
                        "unknown dimension '{other}'"
                    )))
                }
            }
        }
        if let Some(w) = fsdp_width {
            let spec = ParallelismSpec::new(tp, pp, ep, w, true)?;
            if spec.world() != world {
                return Err(ParallelError::WorldSizeMismatch {
                    product: spec.world(),
                    world,
                });
            }
            Ok(spec)
        } else {
            ParallelismSpec::infer_dp(tp, pp, ep, world, false)
        }
    }
}

impl std::fmt::Display for ParallelismSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_tp4_pp4_on_32_gpus_implies_dp2() {
        let s = ParallelismSpec::infer_dp(4, 4, 1, 32, false).unwrap();
        assert_eq!(s.dp, 2);
        assert_eq!(s.world(), 32);
    }

    #[test]
    fn ep8_tp1_pp4_fills_32_gpus() {
        let s = ParallelismSpec::infer_dp(1, 4, 8, 32, false).unwrap();
        assert_eq!(s.dp, 1);
        assert_eq!(s.label(), "EP8-TP1-PP4");
    }

    #[test]
    fn tp8_fsdp4_label() {
        let s = ParallelismSpec::new(8, 1, 1, 4, true).unwrap();
        assert_eq!(s.label(), "TP8-FSDP4");
        assert_eq!(s.world(), 32);
    }

    #[test]
    fn parse_roundtrip() {
        for (label, world) in [
            ("TP2-PP16", 64),
            ("TP4-PP4", 32),
            ("EP8-TP1-PP4", 32),
            ("TP8-FSDP4", 32),
            ("TP1-PP32", 64),
        ] {
            let s = ParallelismSpec::parse(label, world).unwrap();
            assert_eq!(s.world(), world, "{label}");
            assert_eq!(s.label(), label, "{label}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ParallelismSpec::parse("TPx-PP4", 32).is_err());
        assert!(ParallelismSpec::parse("XX4", 32).is_err());
        assert!(ParallelismSpec::parse("TP", 32).is_err());
    }

    #[test]
    fn parse_rejects_world_mismatch() {
        assert!(ParallelismSpec::parse("TP3-PP5", 32).is_err());
        assert!(ParallelismSpec::parse("TP8-FSDP4", 64).is_err());
    }

    #[test]
    fn zero_widths_rejected() {
        assert!(ParallelismSpec::new(0, 1, 1, 1, false).is_err());
        assert!(ParallelismSpec::infer_dp(0, 1, 1, 32, false).is_err());
    }

    #[test]
    fn model_parallel_product() {
        let s = ParallelismSpec::new(2, 16, 1, 2, false).unwrap();
        assert_eq!(s.model_parallel(), 32);
        assert_eq!(s.world(), 64);
    }

    #[test]
    fn display_matches_label() {
        let s = ParallelismSpec::new(2, 16, 1, 2, false).unwrap();
        assert_eq!(format!("{s}"), "TP2-PP16");
    }
}
