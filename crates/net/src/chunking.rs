//! Message chunking policies.
//!
//! NCCL collectives pipeline transfers as many medium-sized chunks, keeping
//! links saturated. The paper observes that the P2P SendRecv kernels issued
//! by TP+PP configurations *lack* this chunking, producing sparse single
//! messages that underutilize PCIe bandwidth (§4.2). The policy here decides
//! how a logical transfer is split into messages; the per-message overhead of
//! each traversed link then determines the efficiency penalty.

use serde::{Deserialize, Serialize};

/// How a logical transfer is split into wire messages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChunkingPolicy {
    /// One message per transfer, however large (the paper's observed
    /// SendRecv behaviour).
    Unchunked,
    /// Pipelined fixed-size chunks (NCCL-style collectives).
    Chunked {
        /// Chunk size in bytes.
        chunk_bytes: u64,
    },
}

impl ChunkingPolicy {
    /// NCCL's default-ish 4 MiB pipeline chunk.
    pub fn nccl_default() -> Self {
        ChunkingPolicy::Chunked {
            chunk_bytes: 4 * 1024 * 1024,
        }
    }

    /// Number of messages used to move `bytes`.
    ///
    /// ```
    /// use charllm_net::ChunkingPolicy;
    /// assert_eq!(ChunkingPolicy::Unchunked.num_messages(1 << 30), 1);
    /// assert_eq!(
    ///     ChunkingPolicy::Chunked { chunk_bytes: 1 << 20 }.num_messages(1 << 22),
    ///     4
    /// );
    /// ```
    pub fn num_messages(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        match self {
            ChunkingPolicy::Unchunked => 1,
            ChunkingPolicy::Chunked { chunk_bytes } => bytes.div_ceil((*chunk_bytes).max(1)),
        }
    }

    /// Whether transfers under this policy can pipeline across links (a
    /// single unchunked message must fully traverse each hop in turn, while
    /// chunks stream).
    pub fn pipelines(&self) -> bool {
        matches!(self, ChunkingPolicy::Chunked { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unchunked_is_single_message() {
        assert_eq!(ChunkingPolicy::Unchunked.num_messages(123_456_789), 1);
    }

    #[test]
    fn chunked_rounds_up() {
        let p = ChunkingPolicy::Chunked { chunk_bytes: 100 };
        assert_eq!(p.num_messages(250), 3);
        assert_eq!(p.num_messages(300), 3);
        assert_eq!(p.num_messages(1), 1);
    }

    #[test]
    fn zero_bytes_zero_messages() {
        assert_eq!(ChunkingPolicy::Unchunked.num_messages(0), 0);
        assert_eq!(ChunkingPolicy::nccl_default().num_messages(0), 0);
    }

    #[test]
    fn zero_chunk_size_does_not_divide_by_zero() {
        let p = ChunkingPolicy::Chunked { chunk_bytes: 0 };
        assert_eq!(p.num_messages(10), 10);
    }
}
