/root/repo/target/debug/deps/parallel_executor-9266ef81adfbc1b8.d: tests/parallel_executor.rs

/root/repo/target/debug/deps/parallel_executor-9266ef81adfbc1b8: tests/parallel_executor.rs

tests/parallel_executor.rs:
