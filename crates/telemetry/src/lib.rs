//! Telemetry collection and reporting for CharLLM-PPT.
//!
//! The Rust stand-in for the paper's Zeus + NVML/AMD-SMI pipeline: sampled
//! per-GPU time series (power, temperature, clock, utilization, PCIe
//! traffic), aggregation into the per-configuration summary metrics the
//! figures plot, row-normalized heatmaps (Figs. 5, 17, 18), and CSV export
//! matching the artifact's output format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod csv;
pub mod heatmap;
pub mod store;
pub mod timeseries;

pub use aggregate::SeriesSummary;
pub use heatmap::Heatmap;
pub use store::{GpuSample, TelemetryStore};
pub use timeseries::TimeSeries;
