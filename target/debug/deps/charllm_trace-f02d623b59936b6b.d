/root/repo/target/debug/deps/charllm_trace-f02d623b59936b6b.d: crates/trace/src/lib.rs crates/trace/src/builder.rs crates/trace/src/lower/mod.rs crates/trace/src/lower/grad_sync.rs crates/trace/src/lower/inference.rs crates/trace/src/lower/layer.rs crates/trace/src/task.rs crates/trace/src/trace.rs

/root/repo/target/debug/deps/libcharllm_trace-f02d623b59936b6b.rlib: crates/trace/src/lib.rs crates/trace/src/builder.rs crates/trace/src/lower/mod.rs crates/trace/src/lower/grad_sync.rs crates/trace/src/lower/inference.rs crates/trace/src/lower/layer.rs crates/trace/src/task.rs crates/trace/src/trace.rs

/root/repo/target/debug/deps/libcharllm_trace-f02d623b59936b6b.rmeta: crates/trace/src/lib.rs crates/trace/src/builder.rs crates/trace/src/lower/mod.rs crates/trace/src/lower/grad_sync.rs crates/trace/src/lower/inference.rs crates/trace/src/lower/layer.rs crates/trace/src/task.rs crates/trace/src/trace.rs

crates/trace/src/lib.rs:
crates/trace/src/builder.rs:
crates/trace/src/lower/mod.rs:
crates/trace/src/lower/grad_sync.rs:
crates/trace/src/lower/inference.rs:
crates/trace/src/lower/layer.rs:
crates/trace/src/task.rs:
crates/trace/src/trace.rs:
