//! Segment-based lazy accounting accrual, shared by both engines.
//!
//! Accounting (kernel-class busy time, GPU activity/utilization/occupancy,
//! flow traffic) used to be accrued per event: every `advance(dt)` touched
//! every active rank and live flow just to add `coeff * dt` into a handful
//! of accumulators, even though the coefficients only change at *mode
//! transitions* — a rank starting/finishing a kernel, a wait completing, a
//! GPU's flow presence flipping between zero and nonzero, a flow's
//! bottleneck rate moving. At 512 GPUs that pure bookkeeping was the
//! majority of the hot loop.
//!
//! The engines now accrue in **segments**: each rank and flow remembers the
//! time its accounting was last brought current (`acc_since`), and a flush
//! adds `coeff * (now - acc_since)` in one shot. Flushes happen at every
//! point where a coefficient input changes, plus every control boundary
//! (the accumulators are read there) and once at `finish`:
//!
//! - rank mode transitions (compute start/end, wait block/wake);
//! - a GPU's flow count crossing 0 ↔ 1 (the overlap-activity bonus and the
//!   idle-comm accrual key off flow *presence*);
//! - a flow's cached rate changing **bit-wise** (pending movement is banked
//!   into `moved_acc` so traffic charges stay a pure per-flow function);
//! - control boundaries, telemetry samples, and run end.
//!
//! Work *progress* (`remaining -= rate * dt`, completion predicates, `dt`
//! selection) stays strictly per-event and untouched, so the event stream
//! is bit-identical to the per-event-accounting engines. Both engines call
//! the helpers below with identically ordered flush sites, which keeps the
//! golden byte-equality between them intact: the segment sums replace the
//! per-event sums *in both engines at the same boundaries*.

use charllm_trace::{ComputeKind, KernelClass};

use crate::engine::kernel_pressure;
use crate::result::KernelBreakdown;

/// Accrue one computing segment of length `len` for a rank: measured
/// kernel time, GPU activity (with the comm-overlap bonus when flows are
/// present), utilization, and occupancy pressure.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn accrue_computing(
    len: f64,
    kind: ComputeKind,
    flows_present: bool,
    measured: bool,
    kernel: &mut KernelBreakdown,
    activity: &mut f64,
    util: &mut f64,
    occ: &mut (f64, f64, f64),
) {
    if measured {
        kernel.add(KernelClass::of_compute(kind), len);
    }
    let act = kind.activity() + if flows_present { 0.25 } else { 0.0 };
    *activity += act.min(1.0) * len;
    *util += len;
    let (w, tb) = kernel_pressure(kind);
    let comm = if flows_present { 1.0 } else { 0.0 };
    occ.0 += len;
    occ.1 += (w + 0.2 * comm) * len;
    occ.2 += (tb + 0.1 * comm) * len;
}

/// Accrue one collective-wait segment: communication kernels keep the SMs
/// occupied at low pressure (the paper's "prolonged communication kernels"
/// sustaining occupancy).
#[inline]
pub(crate) fn accrue_waiting(
    len: f64,
    class: KernelClass,
    measured: bool,
    kernel: &mut KernelBreakdown,
    activity: &mut f64,
    util: &mut f64,
    occ: &mut (f64, f64, f64),
) {
    if measured {
        kernel.add(class, len);
    }
    *activity += 0.38 * len;
    *util += len;
    occ.0 += len;
    occ.1 += 0.2 * len;
    occ.2 += 0.1 * len;
}

/// Accrue one idle-with-flows segment: eager-send flows may still be
/// flying over an otherwise idle GPU; count comm presence lightly.
#[inline]
pub(crate) fn accrue_idle(len: f64, activity: &mut f64) {
    *activity += 0.38 * len;
}

/// Bank a flow's pending movement at its *old* rate into `moved_acc` and
/// restart the segment at `now`. Called exactly when the cached rate is
/// about to change bit-wise — both engines compare bits, so they bank at
/// the same instants and the banked sums match.
#[inline]
pub(crate) fn bank_flow_segment(rate: f64, now: f64, acc_since: &mut f64, moved_acc: &mut f64) {
    *moved_acc += rate * (now - *acc_since);
    *acc_since = now;
}

/// Drain a flow's accumulated movement (banked + the open segment at the
/// current rate) and restart accrual at `now`. The caller converts the
/// returned work units into payload charges.
#[inline]
pub(crate) fn take_flow_pending(
    rate: f64,
    now: f64,
    acc_since: &mut f64,
    moved_acc: &mut f64,
) -> f64 {
    let pending = *moved_acc + rate * (now - *acc_since);
    *acc_since = now;
    *moved_acc = 0.0;
    pending
}
