//! A simple sampled time series.

use serde::{Deserialize, Serialize};

/// A time-ordered series of `(t, value)` samples.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    t: Vec<f64>,
    v: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not monotonically non-decreasing.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.t.last() {
            assert!(t >= last, "time must be non-decreasing: {t} < {last}");
        }
        self.t.push(t);
        self.v.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Timestamps.
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Values.
    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// Iterate `(t, v)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.t.iter().copied().zip(self.v.iter().copied())
    }

    /// Arithmetic mean of the values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.v.is_empty() {
            0.0
        } else {
            self.v.iter().sum::<f64>() / self.v.len() as f64
        }
    }

    /// Maximum value (0.0 when empty).
    pub fn peak(&self) -> f64 {
        if self.v.is_empty() {
            0.0
        } else {
            self.v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Minimum value (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.v.is_empty() {
            0.0
        } else {
            self.v.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Trapezoidal integral over time (e.g. watts → joules).
    pub fn integrate(&self) -> f64 {
        let mut acc = 0.0;
        for i in 1..self.t.len() {
            acc += 0.5 * (self.v[i] + self.v[i - 1]) * (self.t[i] - self.t[i - 1]);
        }
        acc
    }

    /// The sub-series with `t >= from` (used to discard warm-up iterations,
    /// as the paper discards its first 10).
    pub fn since(&self, from: f64) -> TimeSeries {
        let start = self.t.partition_point(|&t| t < from);
        TimeSeries {
            t: self.t[start..].to_vec(),
            v: self.v[start..].to_vec(),
        }
    }

    /// A percentile of the values (linear interpolation; `p` in `[0, 100]`).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.v.is_empty() {
            return 0.0;
        }
        let mut sorted = self.v.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in telemetry"));
        let pos = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pairs: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in pairs {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn empty_series_stats_are_zero() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.peak(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.integrate(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn basic_stats() {
        let s = series(&[(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.peak(), 3.0);
        assert_eq!(s.min(), 1.0);
    }

    #[test]
    fn peak_of_all_negative_series_is_true_maximum() {
        // Regression: the old `.max(0.0)` clamp reported 0.0 — a value never
        // sampled — for any series that stayed below zero.
        let s = series(&[(0.0, -5.0), (1.0, -2.0), (2.0, -9.0)]);
        assert_eq!(s.peak(), -2.0);
        assert_eq!(s.min(), -9.0);
    }

    #[test]
    fn integrate_trapezoid() {
        // Constant 100 W for 10 s = 1000 J.
        let s = series(&[(0.0, 100.0), (10.0, 100.0)]);
        assert!((s.integrate() - 1000.0).abs() < 1e-9);
        // Ramp 0..100 over 10 s = 500 J.
        let r = series(&[(0.0, 0.0), (10.0, 100.0)]);
        assert!((r.integrate() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn since_discards_warmup() {
        let s = series(&[(0.0, 1.0), (5.0, 2.0), (10.0, 3.0)]);
        let tail = s.since(5.0);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.values(), &[2.0, 3.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let s = series(&[(0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (3.0, 40.0)]);
        assert!((s.percentile(0.0) - 10.0).abs() < 1e-12);
        assert!((s.percentile(100.0) - 40.0).abs() < 1e-12);
        assert!((s.percentile(50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn non_monotone_time_panics() {
        let mut s = TimeSeries::new();
        s.push(1.0, 0.0);
        s.push(0.5, 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn percentile_bounded_by_min_max(
            values in proptest::collection::vec(-1e9f64..1e9, 1..64),
            p in 0.0f64..100.0,
        ) {
            let mut s = TimeSeries::new();
            for (i, v) in values.iter().enumerate() {
                s.push(i as f64, *v);
            }
            let q = s.percentile(p);
            prop_assert!(q >= s.min() - 1e-9);
            prop_assert!(q <= s.peak().max(s.min()) + 1e-9 || s.peak() == 0.0);
        }

        #[test]
        fn integral_bounded_by_extremes(
            values in proptest::collection::vec(0.0f64..1e6, 2..64),
        ) {
            let mut s = TimeSeries::new();
            for (i, v) in values.iter().enumerate() {
                s.push(i as f64, *v);
            }
            let span = (values.len() - 1) as f64;
            prop_assert!(s.integrate() >= s.min() * span - 1e-6);
            prop_assert!(s.integrate() <= s.peak().max(s.min()) * span + 1e-6);
        }
    }
}
