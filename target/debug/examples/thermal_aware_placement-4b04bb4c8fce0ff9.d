/root/repo/target/debug/examples/thermal_aware_placement-4b04bb4c8fce0ff9.d: examples/thermal_aware_placement.rs

/root/repo/target/debug/examples/thermal_aware_placement-4b04bb4c8fce0ff9: examples/thermal_aware_placement.rs

examples/thermal_aware_placement.rs:
