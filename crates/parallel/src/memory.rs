//! Per-rank memory footprint under a parallelism spec.
//!
//! This is the model the paper uses implicitly when it "determines the
//! minimal total model parallelism (Tensor × Pipeline × Expert) required to
//! fit within GPU memory" (§3.1), and it is what makes activation
//! recomputation "unlock configurations that were previously infeasible"
//! (§4.3, e.g. EP8-TP1-PP4 on Mixtral-8x22B).

use serde::{Deserialize, Serialize};

use charllm_models::memory::{
    grad_bytes, layer_activation_bytes, optimizer_bytes, weight_bytes, MemoryBreakdown,
};
use charllm_models::TrainJob;

use crate::error::ParallelError;
use crate::spec::ParallelismSpec;

/// Framework/runtime overhead reserved per rank (CUDA context, NCCL buffers,
/// fragmentation headroom).
pub const RUNTIME_OVERHEAD_BYTES: u64 = 6 * (1u64 << 30);

/// How a model's layers are divided across pipeline stages.
///
/// The default is an even split; §6's *asymmetric* thermal-aware placement
/// gives cooler stages an extra layer (e.g. Llama3-70B's 19/21 split).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePartition {
    layers_per_stage: Vec<usize>,
}

impl StagePartition {
    /// Even partition of `layers` across `stages`.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::NotDivisible`] when stages do not divide the
    /// layer count (matching the framework restriction).
    pub fn even(layers: usize, stages: usize) -> Result<Self, ParallelError> {
        if stages == 0 {
            return Err(ParallelError::ZeroWidth("pipeline parallel"));
        }
        if !layers.is_multiple_of(stages) {
            return Err(ParallelError::NotDivisible {
                what: "layers",
                value: layers,
                by: stages,
            });
        }
        Ok(StagePartition {
            layers_per_stage: vec![layers / stages; stages],
        })
    }

    /// Explicit per-stage layer counts.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::InvalidPartition`] when the counts do not
    /// sum to `layers` or any stage is empty.
    pub fn explicit(layers: usize, layers_per_stage: Vec<usize>) -> Result<Self, ParallelError> {
        if layers_per_stage.iter().sum::<usize>() != layers {
            return Err(ParallelError::InvalidPartition(format!(
                "stage layers sum to {} but model has {layers}",
                layers_per_stage.iter().sum::<usize>()
            )));
        }
        if layers_per_stage.contains(&0) {
            return Err(ParallelError::InvalidPartition(
                "empty pipeline stage".into(),
            ));
        }
        Ok(StagePartition { layers_per_stage })
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.layers_per_stage.len()
    }

    /// Layers held by one stage.
    pub fn layers(&self, stage: usize) -> usize {
        self.layers_per_stage[stage]
    }

    /// Maximum layers held by any stage.
    pub fn max_layers(&self) -> usize {
        self.layers_per_stage.iter().copied().max().unwrap_or(0)
    }

    /// Relative imbalance: `(max - min) / mean` (the paper cites 10 % for a
    /// 19/21 split and 18 % for 11/13).
    pub fn imbalance(&self) -> f64 {
        let max = *self.layers_per_stage.iter().max().unwrap() as f64;
        let min = *self.layers_per_stage.iter().min().unwrap() as f64;
        let mean =
            self.layers_per_stage.iter().sum::<usize>() as f64 / self.layers_per_stage.len() as f64;
        (max - min) / mean
    }
}

/// Per-rank model parameters (weights held by one rank) at a given stage.
pub fn rank_params(
    job: &TrainJob,
    spec: &ParallelismSpec,
    partition: &StagePartition,
    stage: usize,
) -> u64 {
    let arch = &job.arch;
    let layers = partition.layers(stage) as u64;
    let attn = arch.attn_params_per_layer() / spec.tp as u64;
    let mlp = match &arch.moe {
        None => arch.mlp_params_per_block() / spec.tp as u64,
        Some(moe) => {
            // Experts divided across EP; each expert sharded by TP.
            let experts_here = (moe.num_experts / spec.ep).max(1) as u64;
            experts_here * arch.mlp_params_per_block() / spec.tp as u64
                + (arch.hidden * moe.num_experts) as u64 // router replicated
        }
    };
    let mut params = layers * (attn + mlp);
    // Embedding on the first stage, LM head on the last (tied: one copy on
    // each boundary stage, which is how Megatron replicates tied weights).
    let embed = (job.arch.vocab * job.arch.hidden) as u64 / spec.tp as u64;
    if stage == 0 {
        params += embed;
    }
    if stage == partition.num_stages() - 1 {
        params += embed;
    }
    params
}

/// Memory footprint of the *worst* rank (pipeline stage 0, which stashes the
/// most in-flight activations under 1F1B).
pub fn rank_memory(
    job: &TrainJob,
    spec: &ParallelismSpec,
    partition: &StagePartition,
) -> MemoryBreakdown {
    let stage = 0;
    let params = rank_params(job, spec, partition, stage);
    let (weights, grads, optimizer) = if let Some(lora) = &job.optim.lora {
        // Base weights frozen (no grads/optimizer); adapters are tiny.
        let trainable = lora.trainable_params(&job.arch) / (spec.tp * spec.pp.max(1)) as u64;
        (
            weight_bytes(params + trainable, job.precision),
            grad_bytes(trainable, job.precision),
            optimizer_bytes(trainable, 1),
        )
    } else if spec.fsdp {
        // FSDP shards weights/grads/optimizer across the DP dimension, but
        // materializes one layer's full parameters while executing it.
        let gathered = params / partition.layers(stage).max(1) as u64;
        (
            weight_bytes(params / spec.dp as u64 + gathered, job.precision),
            grad_bytes(params / spec.dp as u64, job.precision),
            optimizer_bytes(params, spec.dp),
        )
    } else {
        let shards = if job.optim.distributed_optimizer {
            spec.dp
        } else {
            1
        };
        (
            weight_bytes(params, job.precision),
            grad_bytes(params, job.precision),
            optimizer_bytes(params, shards),
        )
    };

    // 1F1B: stage 0 holds up to `pp` in-flight microbatches (bounded by the
    // number of microbatches per pipeline).
    let mb_per_pipe = job.num_microbatches(spec.dp).max(1);
    let in_flight = spec.pp.min(mb_per_pipe) as u64;
    let per_layer = layer_activation_bytes(
        &job.arch,
        job.seq_len,
        job.microbatch,
        spec.tp,
        job.optim.activation_recompute,
    );
    let activations = per_layer * partition.layers(stage) as u64 * in_flight;

    MemoryBreakdown {
        weights,
        grads,
        optimizer,
        activations,
        overhead: RUNTIME_OVERHEAD_BYTES,
    }
}

/// Whether a configuration fits in a GPU's memory.
pub fn fits(
    job: &TrainJob,
    spec: &ParallelismSpec,
    partition: &StagePartition,
    gpu_memory_bytes: u64,
) -> bool {
    rank_memory(job, spec, partition).total() <= gpu_memory_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::GpuModel;
    use charllm_models::presets;

    fn job(arch: charllm_models::TransformerArch) -> TrainJob {
        TrainJob::pretrain(arch)
    }

    #[test]
    fn even_partition() {
        let p = StagePartition::even(96, 8).unwrap();
        assert_eq!(p.num_stages(), 8);
        assert_eq!(p.layers(3), 12);
        assert_eq!(p.imbalance(), 0.0);
    }

    #[test]
    fn uneven_layers_rejected() {
        assert!(StagePartition::even(96, 5).is_err());
        assert!(StagePartition::even(96, 0).is_err());
    }

    #[test]
    fn paper_asymmetric_splits() {
        // Llama3-70B: 80 layers over 4 stages as 19/21 => 10% imbalance.
        let p = StagePartition::explicit(80, vec![19, 19, 21, 21]).unwrap();
        assert!((p.imbalance() - 0.10).abs() < 1e-9);
        // GPT3-175B: 96 layers over 8 stages as 11/13 => ~18% imbalance.
        let p = StagePartition::explicit(96, vec![11, 11, 11, 11, 13, 13, 13, 13]).unwrap();
        assert!((p.imbalance() - 2.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn bad_partitions_rejected() {
        assert!(StagePartition::explicit(80, vec![40, 39]).is_err());
        assert!(StagePartition::explicit(80, vec![80, 0]).is_err());
    }

    #[test]
    fn gpt3_175b_does_not_fit_without_model_parallelism() {
        let j = job(presets::gpt3_175b());
        let spec = ParallelismSpec::data_parallel(32);
        let part = StagePartition::even(96, 1).unwrap();
        assert!(!fits(&j, &spec, &part, GpuModel::H200.spec().memory_bytes));
    }

    #[test]
    fn gpt3_175b_fits_with_tp8_pp4_on_h200() {
        let j = job(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap();
        let part = StagePartition::even(96, 4).unwrap();
        let mem = rank_memory(&j, &spec, &part);
        assert!(
            mem.total() <= GpuModel::H200.spec().memory_bytes,
            "needs {:.1} GiB",
            mem.total_gib()
        );
    }

    #[test]
    fn recompute_unlocks_deeper_microbatching() {
        // With mb=4 and TP2-PP16 on H100, stashing overflows but recompute
        // fits — the Fig. 7 mechanism.
        let base = job(presets::gpt3_175b()).with_microbatch(4);
        let spec = ParallelismSpec::infer_dp(2, 16, 1, 64, false).unwrap();
        let part = StagePartition::even(96, 16).unwrap();
        let h100 = GpuModel::H100.spec().memory_bytes;
        let without = rank_memory(&base, &spec, &part);
        let with = rank_memory(&base.clone().with_recompute(true), &spec, &part);
        assert!(with.activations < without.activations / 5);
        assert!(
            with.total() <= h100,
            "recompute config needs {:.1} GiB",
            with.total_gib()
        );
    }

    #[test]
    fn zero1_shards_optimizer_across_dp() {
        let j = job(presets::llama3_70b());
        let tp8dp4 = ParallelismSpec::infer_dp(8, 1, 1, 32, false).unwrap();
        let part = StagePartition::even(80, 1).unwrap();
        let with_zero1 = rank_memory(&j, &tp8dp4, &part);
        let mut no_zero1_job = j.clone();
        no_zero1_job.optim.distributed_optimizer = false;
        let without = rank_memory(&no_zero1_job, &tp8dp4, &part);
        assert!(with_zero1.optimizer < without.optimizer / 3);
        assert_eq!(with_zero1.weights, without.weights);
    }

    #[test]
    fn fsdp_shards_weights_too() {
        let j = job(presets::llama3_70b());
        let fsdp = ParallelismSpec::new(8, 1, 1, 4, true).unwrap();
        let plain = ParallelismSpec::new(8, 1, 1, 4, false).unwrap();
        let part = StagePartition::even(80, 1).unwrap();
        let m_fsdp = rank_memory(&j, &fsdp, &part);
        let m_plain = rank_memory(&j, &plain, &part);
        assert!(m_fsdp.weights < m_plain.weights / 2);
        assert!(m_fsdp.total() < m_plain.total());
    }

    #[test]
    fn lora_removes_optimizer_pressure() {
        let arch = presets::llama3_70b();
        let full = job(arch.clone());
        let lora = TrainJob::lora_finetune(arch);
        let spec = ParallelismSpec::infer_dp(4, 4, 1, 32, false).unwrap();
        let part = StagePartition::even(80, 4).unwrap();
        let m_full = rank_memory(&full, &spec, &part);
        let m_lora = rank_memory(&lora, &spec, &part);
        assert!(m_lora.optimizer < m_full.optimizer / 50);
        assert!(m_lora.grads < m_full.grads / 50);
    }

    #[test]
    fn ep_divides_expert_weights() {
        let j = job(presets::mixtral_8x22b());
        let part = StagePartition::even(56, 4).unwrap();
        let ep1 = ParallelismSpec::new(2, 4, 1, 4, false).unwrap();
        let ep8 = ParallelismSpec::new(2, 4, 8, 1, false).unwrap();
        let p1 = rank_params(&j, &ep1, &part, 1);
        let p8 = rank_params(&j, &ep8, &part, 1);
        assert!(p8 < p1 / 4, "ep8 shards experts: {p8} vs {p1}");
    }

    #[test]
    fn first_stage_heavier_than_middle() {
        // Embedding lives on stage 0 — the §6 rationale for putting early
        // stages on cooler GPUs.
        let j = job(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(2, 16, 1, 64, false).unwrap();
        let part = StagePartition::even(96, 16).unwrap();
        assert!(rank_params(&j, &spec, &part, 0) > rank_params(&j, &spec, &part, 7));
    }
}
