/root/repo/target/debug/examples/config_search-b44fc191433e7a0e.d: examples/config_search.rs

/root/repo/target/debug/examples/config_search-b44fc191433e7a0e: examples/config_search.rs

examples/config_search.rs:
