/root/repo/target/debug/deps/fig21-5546eb0ea07c38fe.d: crates/bench/benches/fig21.rs

/root/repo/target/debug/deps/fig21-5546eb0ea07c38fe: crates/bench/benches/fig21.rs

crates/bench/benches/fig21.rs:
