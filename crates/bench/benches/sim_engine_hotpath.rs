//! Engine hot-path benchmark: event-driven `Simulator` vs the scan-based
//! `ReferenceSimulator` on an 8-node, 10-iteration GPT-3 13B workload.
//!
//! The two engines produce byte-identical `SimResult`s (enforced by
//! `tests/engine_golden.rs`), so this measures pure scheduler overhead:
//! plan caching, incremental link loads, and waiter wake-lists versus
//! per-event global recomputation. Emits a `BENCH_sim_engine.json` record
//! (wall-clock per run, events/s, speedup) for perf trajectory tracking.

use std::time::Instant;

use criterion::{black_box, Criterion};

use charllm_bench::save_json;
use charllm_hw::{presets, Cluster};
use charllm_models::{presets as models, TrainJob};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::reference::ReferenceSimulator;
use charllm_sim::{EngineStats, SimConfig, SimResult, Simulator};
use charllm_trace::lower::{lower_train, DeviceHints};
use charllm_trace::ExecutionTrace;

const ITERATIONS: usize = 10;

fn workload(cluster: &Cluster) -> ExecutionTrace {
    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(64);
    let spec = ParallelismSpec::infer_dp(4, 8, 1, cluster.num_gpus(), false).unwrap();
    let partition = StagePartition::even(40, 8).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
        .unwrap()
        .trace
}

fn config() -> SimConfig {
    let mut cfg = SimConfig::fast();
    cfg.iterations = ITERATIONS;
    cfg.warmup_iterations = 1;
    cfg
}

fn run_new(
    cluster: &Cluster,
    placement: &Placement,
    trace: &ExecutionTrace,
) -> (SimResult, EngineStats) {
    Simulator::new(cluster, placement, trace, config())
        .unwrap()
        .run_stats()
        .unwrap()
}

fn run_reference(cluster: &Cluster, placement: &Placement, trace: &ExecutionTrace) -> SimResult {
    ReferenceSimulator::new(cluster, placement, trace, config())
        .unwrap()
        .run()
        .unwrap()
}

fn main() {
    let cluster = presets::hgx_h200_with_nodes(8);
    let trace = workload(&cluster);
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    println!(
        "workload: gpt3_13b tp4 pp8 on {} GPUs / 8 nodes, {ITERATIONS} iterations",
        cluster.num_gpus()
    );

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("sim_engine_hotpath");
    group.sample_size(3);
    group.bench_function("event_driven", |b| {
        b.iter(|| run_new(&cluster, &placement, black_box(&trace)))
    });
    group.bench_function("reference_scan", |b| {
        b.iter(|| run_reference(&cluster, &placement, black_box(&trace)))
    });
    group.finish();

    // Single timed head-to-head for the recorded baseline. Both engines
    // walk the identical event sequence, so the event count from the
    // event-driven engine's stats applies to both.
    let t0 = Instant::now();
    let (result_new, stats) = run_new(&cluster, &placement, &trace);
    let new_wall_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let result_ref = run_reference(&cluster, &placement, &trace);
    let ref_wall_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        serde_json::to_string(&result_new).unwrap(),
        serde_json::to_string(&result_ref).unwrap(),
        "engines diverged on the benchmark workload"
    );

    let speedup = ref_wall_s / new_wall_s;
    let record = serde_json::json!({
        "workload": "gpt3_13b_tp4_pp8_dp2_8node",
        "gpus": cluster.num_gpus(),
        "iterations": ITERATIONS,
        "events": stats.events,
        "event_driven": {
            "wall_s": new_wall_s,
            "events_per_s": stats.events as f64 / new_wall_s,
        },
        "reference_scan": {
            "wall_s": ref_wall_s,
            "events_per_s": stats.events as f64 / ref_wall_s,
        },
        "speedup": speedup,
        "engine_stats": stats,
    });
    println!(
        "events {} | event-driven {:.3}s ({:.0} events/s) | reference {:.3}s ({:.0} events/s) | speedup {:.2}x",
        stats.events,
        new_wall_s,
        stats.events as f64 / new_wall_s,
        ref_wall_s,
        stats.events as f64 / ref_wall_s,
        speedup
    );
    save_json("BENCH_sim_engine", &record);
}
